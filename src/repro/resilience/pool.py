"""A crash-safe process pool with per-victim requeue.

``multiprocessing.Pool.imap_unordered`` hangs forever when a worker is
SIGKILLed mid-task (the result simply never arrives), and
``concurrent.futures`` answers the same event with ``BrokenProcessPool``
— every sibling task in flight fails collectively.  Neither is
acceptable for a batch engine whose contract is "one bad task never
takes the rest down", so this module owns its workers directly:

* one ``multiprocessing.Pipe`` per worker, parent-side dispatch — the
  parent always knows *exactly* which ``(task, attempt)`` a worker is
  holding, because it put it there;
* worker death is an event, not a timeout: the kernel closes the dead
  child's pipe end, ``connection.wait`` wakes, and ``recv`` raises
  ``EOFError`` — the parent joins the corpse, **respawns a fresh
  worker**, and requeues the victim task under its
  :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff +
  deterministic jitter), or reports it crashed once the budget is
  exhausted;
* completed results stream back in completion order with the attempt
  count attached, so callers can preserve request order and surface
  ``attempts`` on reports.

The pool is persistent (an :class:`repro.api.Analyzer` session keeps
one across batches) and ``run`` is serialized with an internal lock:
concurrent batches on one pool queue rather than interleave — the
service's admission controller bounds how many even try.

Known limitation, inherited from every pipe-based pool: a worker
killed *while serializing a result* can leave a partial pickle; the
parent treats any receive failure as a worker death, so the task is
retried rather than lost.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = ["PoolTask", "ResilientPool", "TaskOutcome"]


@dataclass
class PoolTask:
    """One unit of pool work: an opaque payload + its retry budget."""

    task_id: Any
    payload: Any
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    #: Display name, used for jitter derivation and crash messages.
    name: str = ""


@dataclass
class TaskOutcome:
    """What became of one :class:`PoolTask`.

    Either ``value`` (the worker function's return value) or
    ``crashed=True`` with a human-readable ``detail``; ``attempts``
    counts every execution consumed, crashes included.
    """

    task_id: Any
    value: Any = None
    crashed: bool = False
    attempts: int = 1
    detail: str = ""
    #: Parent-measured wall clock from first dispatch to resolution.
    runtime: float = 0.0


def _worker_main(conn, fn: Callable[[Any, int], Any]) -> None:
    """Worker loop: recv ``(payload, attempt)``, send the outcome.

    SIGINT is ignored so a Ctrl-C on the host drains through the
    parent's graceful path instead of stack-tracing every child.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from . import faults

    faults.mark_worker_process()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        payload, attempt = message
        try:
            result: Tuple[str, Any] = ("done", fn(payload, attempt))
        except Exception as exc:  # defensive: fn is expected not to raise
            result = ("raised", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Worker:
    __slots__ = ("process", "conn", "task", "attempt", "dispatched_at")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task: Optional[PoolTask] = None
        self.attempt = 0
        self.dispatched_at = 0.0


class ResilientPool:
    """Crash-safe worker pool; see the module docstring for semantics.

    ``worker`` is the module-level function each child runs per task,
    ``fn(payload, attempt) -> value``; it defaults to the batch
    engine's task runner.  Workers are spawned lazily on first use and
    persist across :meth:`run` calls until :meth:`terminate`.
    """

    def __init__(self, processes: int, worker: Optional[Callable[[Any, int], Any]] = None):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if worker is None:
            from ..batch.engine import _pool_worker as worker  # type: ignore[assignment]
        self._processes = processes
        self._worker_fn = worker
        self._workers: List[_Worker] = []
        self._run_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._closed = False
        #: Monotonic counter: crash/respawn events, exposed for tests
        #: and the service's health endpoint.
        self.crashes = 0
        self.respawns = 0

    @property
    def processes(self) -> int:
        return self._processes

    # -- worker lifecycle -----------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main, args=(child_conn, self._worker_fn), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_workers(self) -> None:
        if self._closed:
            raise RuntimeError("ResilientPool is terminated")
        while len(self._workers) < self._processes:
            self._workers.append(self._spawn())

    def _discard(self, worker: _Worker) -> str:
        """Reap a dead worker; returns a human-readable death detail."""
        worker.process.join(timeout=1.0)
        exitcode = worker.process.exitcode
        if exitcode is None:  # pipe broke but the process lingers
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            exitcode = worker.process.exitcode
        try:
            worker.conn.close()
        except OSError:
            pass
        self._workers.remove(worker)
        if exitcode is not None and exitcode < 0:
            try:
                signame = signal.Signals(-exitcode).name
            except ValueError:
                signame = f"signal {-exitcode}"
            return f"worker pid {worker.process.pid} died ({signame})"
        return f"worker pid {worker.process.pid} died (exit code {exitcode})"

    def _dispatch(self, worker: _Worker, task: PoolTask, attempt: int) -> bool:
        if not worker.process.is_alive():
            return False
        try:
            worker.conn.send((task.payload, attempt))
        except (BrokenPipeError, OSError):
            return False
        worker.task = task
        worker.attempt = attempt
        worker.dispatched_at = time.monotonic()
        return True

    # -- the scheduler ---------------------------------------------------

    def run(
        self,
        tasks: Sequence[PoolTask],
        on_result: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> Dict[Any, TaskOutcome]:
        """Execute every task; outcomes keyed by ``task_id``.

        ``on_result`` fires once per resolved task in *completion*
        order (crash-exhausted tasks included).  Worker deaths respawn
        and requeue transparently; only retry-budget exhaustion
        surfaces, as a ``crashed`` outcome.
        """
        with self._run_lock:
            return self._run_locked(list(tasks), on_result)

    def _run_locked(self, tasks, on_result):
        self._ensure_workers()
        seq = itertools.count()
        #: (ready_at, tiebreak, task, attempt) — min-heap on ready time.
        pending: List[Tuple[float, int, PoolTask, int]] = [
            (0.0, next(seq), task, 1) for task in tasks
        ]
        heapq.heapify(pending)
        first_dispatch: Dict[int, float] = {}
        outcomes: Dict[Any, TaskOutcome] = {}
        remaining = len(tasks)

        def _resolve(outcome: TaskOutcome) -> None:
            nonlocal remaining
            outcomes[outcome.task_id] = outcome
            remaining -= 1
            if on_result is not None:
                on_result(outcome)

        def _requeue_or_crash(task: PoolTask, attempt: int, detail: str) -> None:
            self.crashes += 1
            if task.retry.allows(attempt):
                ready_at = time.monotonic() + task.retry.delay_for(attempt, task.name)
                heapq.heappush(pending, (ready_at, next(seq), task, attempt + 1))
            else:
                elapsed = time.monotonic() - first_dispatch.get(id(task), time.monotonic())
                _resolve(
                    TaskOutcome(
                        task_id=task.task_id,
                        crashed=True,
                        attempts=attempt,
                        detail=f"{detail} after {attempt} attempt(s)",
                        runtime=elapsed,
                    )
                )

        while remaining > 0:
            if self._closed:
                raise RuntimeError("ResilientPool terminated mid-run")
            now = time.monotonic()
            idle = [w for w in self._workers if w.task is None]
            while pending and pending[0][0] <= now and idle:
                _, _, task, attempt = heapq.heappop(pending)
                worker = idle.pop()
                first_dispatch.setdefault(id(task), now)
                if not self._dispatch(worker, task, attempt):
                    # Died while idle: reap, respawn, put the task back.
                    self._discard(worker)
                    self.respawns += 1
                    self._ensure_workers()
                    idle = [w for w in self._workers if w.task is None]
                    heapq.heappush(pending, (now, next(seq), task, attempt))

            busy = [w for w in self._workers if w.task is not None]
            if not busy:
                if not pending:  # pragma: no cover - defensive
                    raise RuntimeError("resilient pool scheduler stalled")
                time.sleep(min(0.05, max(0.0, pending[0][0] - time.monotonic())))
                continue

            timeout = None
            if pending and len(busy) < len(self._workers):
                timeout = max(0.0, pending[0][0] - time.monotonic())
            ready = connection.wait([w.conn for w in busy], timeout=timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                worker = by_conn[conn]
                task, attempt = worker.task, worker.attempt
                try:
                    kind, value = worker.conn.recv()
                except Exception:
                    # The pipe died with the worker: respawn + requeue.
                    detail = self._discard(worker)
                    if remaining > 0:
                        self._ensure_workers()
                        self.respawns += 1
                    _requeue_or_crash(task, attempt, detail)
                    continue
                worker.task = None
                if kind == "done":
                    elapsed = time.monotonic() - first_dispatch[id(task)]
                    _resolve(
                        TaskOutcome(
                            task_id=task.task_id,
                            value=value,
                            attempts=attempt,
                            runtime=elapsed,
                        )
                    )
                else:  # the worker function itself raised: retry like a crash
                    _requeue_or_crash(task, attempt, f"worker task raised {value}")
        return outcomes

    # -- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Graceful stop: sentinel every idle worker, then reap."""
        with self._state_lock:
            self._closed = True
            for worker in self._workers:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._workers.clear()

    def terminate(self) -> None:
        """Hard stop: SIGTERM every worker immediately."""
        with self._state_lock:
            self._closed = True
            for worker in self._workers:
                if worker.process.is_alive():
                    worker.process.terminate()
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._workers.clear()

    def join(self) -> None:
        """Kept for ``multiprocessing.Pool`` call-site symmetry."""

    def __enter__(self) -> "ResilientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()

    def __repr__(self) -> str:
        return (
            f"ResilientPool(processes={self._processes}, workers={len(self._workers)}, "
            f"crashes={self.crashes}, respawns={self.respawns})"
        )
