"""Deterministic fault injection (``REPRO_FAULTS`` test hook).

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` rules the
execution layer consults at well-defined hook points:

``on_task_attempt(task, attempt)``
    Called by the engine as a task attempt starts.  A matching rule may
    **kill** the hosting worker process mid-task (``SIGKILL`` — only
    inside pool workers, never the host process), **delay** the attempt
    (``seconds``), or **fail** it with an :class:`InjectedFaultError`
    (surfaced as a normal ``status="error"`` report).
``on_cache_store(name, path)``
    Called by :class:`repro.cache.ResultCache` after an entry lands on
    disk.  A matching ``corrupt-entry`` rule truncates the file,
    simulating a torn write for the self-heal path.

Rules match the task's *display name* with shell globs (``"rdwalk"``,
``"table5_*"``, ``"*"``) and, optionally, a list of ``attempts`` they
apply to (default: every attempt) and a ``probability`` drawn
deterministically from ``hash(seed, task, attempt)`` — no global RNG,
so a plan replays bit-for-bit across runs and across pool workers that
share no state.

Activation is strictly opt-in: the ``REPRO_FAULTS`` environment
variable holds either inline JSON or a path to a JSON file; pool
workers inherit it, so one setting faults a whole fleet.  Tests may
also :func:`install_plan` directly in-process.  With the variable
unset (production), every hook is a no-op costing one dict lookup.

Plan JSON::

    {"seed": 7, "faults": [
        {"op": "kill",  "task": "rdwalk", "attempts": [1]},
        {"op": "delay", "task": "slow_*", "seconds": 0.5},
        {"op": "fail",  "task": "flaky",  "probability": 0.5},
        {"op": "corrupt-entry", "task": "*"}
    ]}
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import InjectedFaultError

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "install_plan",
    "mark_worker_process",
    "on_cache_store",
    "on_task_attempt",
]

#: The activation hook: inline JSON, or a path to a JSON plan file.
ENV_VAR = "REPRO_FAULTS"

_OPS = ("kill", "delay", "fail", "corrupt-entry")


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule of a :class:`FaultPlan`."""

    #: What to inject: ``"kill"`` (SIGKILL the pool worker),
    #: ``"delay"`` (sleep ``seconds``), ``"fail"`` (raise
    #: :class:`InjectedFaultError`) or ``"corrupt-entry"`` (truncate
    #: the just-stored cache entry file).
    op: str
    #: Shell glob matched against the task display name (for
    #: ``corrupt-entry``: the stored report's name).
    task: str = "*"
    #: Attempt numbers the rule applies to; ``None`` = every attempt.
    #: ``{"attempts": [1]}`` is the canonical "die once, succeed on
    #: retry" crash rule.
    attempts: Optional[Tuple[int, ...]] = None
    #: Sleep length for ``op == "delay"``.
    seconds: float = 0.0
    #: Firing probability, drawn deterministically per (task, attempt).
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown fault op {self.op!r}; known: {_OPS}")
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))
            if any(a < 1 for a in self.attempts):  # type: ignore[union-attr]
                raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")

    def matches(self, task: str, attempt: int, seed: int) -> bool:
        if not fnmatchcase(task, self.task):
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{seed}:{self.op}:{task}:{attempt}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.probability

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "task": self.task}
        if self.attempts is not None:
            out["attempts"] = list(self.attempts)
        if self.op == "delay":
            out["seconds"] = self.seconds
        if self.probability < 1.0:
            out["probability"] = self.probability
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault field(s): {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of injection rules."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "faults",
            tuple(
                spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
                for spec in self.faults
            ),
        )

    def select(self, op: str, task: str, attempt: int = 1) -> Optional[FaultSpec]:
        """The first matching rule with this ``op``, or ``None``."""
        for spec in self.faults:
            if spec.op == op and spec.matches(task, attempt, self.seed):
                return spec
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {"faults", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan field(s): {sorted(unknown)}")
        specs = data.get("faults") or ()
        if not isinstance(specs, Sequence) or isinstance(specs, (str, bytes)):
            raise ValueError(f"'faults' must be a list of rules, got {type(specs).__name__}")
        return cls(faults=tuple(specs), seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(data).__name__}")
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

#: Parsed-plan memo keyed by the raw env value, so the per-task hook
#: costs one ``os.environ`` read + dict probe when faults are active
#: and a single failed env lookup when they are not.
_PLAN_MEMO: Dict[str, Optional[FaultPlan]] = {}

#: A plan installed in-process (tests); overrides the environment.
_INSTALLED: List[Optional[FaultPlan]] = [None]

#: True only in batch pool worker processes — the one place a "kill"
#: fault is allowed to fire (killing the CLI/service host would be a
#: self-inflicted outage, not an injected worker crash).
_IN_WORKER = False


def mark_worker_process() -> None:
    """Flag the current process as a pool worker (kill faults armed)."""
    global _IN_WORKER
    _IN_WORKER = True


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Force ``plan`` for this process (``None`` restores env lookup).

    Pool workers do not see an installed plan unless they fork after
    this call; cross-process tests should set :data:`ENV_VAR` instead.
    """
    _INSTALLED[0] = plan


def active_plan() -> Optional[FaultPlan]:
    """The plan in force, or ``None`` (the common, zero-cost case)."""
    if _INSTALLED[0] is not None:
        return _INSTALLED[0]
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if raw not in _PLAN_MEMO:
        try:
            text = raw
            if not raw.lstrip().startswith("{"):
                text = Path(raw).read_text()
            _PLAN_MEMO[raw] = FaultPlan.from_json(text)
        except (OSError, ValueError) as exc:
            raise ValueError(f"invalid {ENV_VAR} fault plan: {exc}") from None
    return _PLAN_MEMO[raw]


# ---------------------------------------------------------------------------
# Hook points
# ---------------------------------------------------------------------------


def on_task_attempt(task: str, attempt: int = 1) -> None:
    """Engine hook: may kill (workers only), delay, or fail the attempt."""
    plan = active_plan()
    if plan is None:
        return
    if _IN_WORKER and plan.select("kill", task, attempt) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    spec = plan.select("delay", task, attempt)
    if spec is not None and spec.seconds > 0:
        time.sleep(spec.seconds)
    if plan.select("fail", task, attempt) is not None:
        raise InjectedFaultError(f"injected failure for task {task!r} (attempt {attempt})")


def on_cache_store(name: str, path: Union[str, os.PathLike]) -> None:
    """Cache hook: may truncate the just-written entry (torn write)."""
    plan = active_plan()
    if plan is None:
        return
    if plan.select("corrupt-entry", name) is None:
        return
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:  # pragma: no cover - racing cleanup is fine
        pass
