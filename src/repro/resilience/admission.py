"""Service-side backpressure primitives: admission + single-flight.

Two small, lock-based building blocks the HTTP service composes in its
POST path (both are transport-agnostic and unit-testable without a
server):

:class:`AdmissionController`
    A bounded in-flight gate.  ``try_acquire`` never blocks: a
    saturated service answers *immediately* with 429 + ``Retry-After``
    instead of stacking handler threads until something else breaks.
    The controller also exposes ``wait_idle`` for the graceful-drain
    path ("finish what you admitted, within the deadline").

:class:`SingleFlight`
    Request coalescing keyed by cache fingerprint.  When N identical
    POSTs race on a cold cache, exactly one (the *leader*) runs the
    solve; the other N-1 (*followers*) park on an event — consuming no
    admission slot and no worker — and re-read the cache once the
    leader publishes.  N racers, one LP solve, N identical responses,
    and exact counters: 1 miss + (N-1) hits.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["AdmissionController", "Flight", "SingleFlight"]


class AdmissionController:
    """Bounded in-flight gate with a non-blocking acquire.

    ``limit`` is the maximum number of concurrently admitted requests;
    ``retry_after_s`` is the hint surfaced in the 429 ``Retry-After``
    header when the gate is full.
    """

    def __init__(self, limit: int, retry_after_s: float = 1.0):
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        if retry_after_s <= 0:
            raise ValueError(f"retry_after_s must be > 0, got {retry_after_s!r}")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._inflight = 0
        self._rejected = 0
        self._cond = threading.Condition()

    def try_acquire(self) -> bool:
        """Claim a slot if one is free; never blocks."""
        with self._cond:
            if self._inflight >= self.limit:
                self._rejected += 1
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._cond:
            if self._inflight <= 0:  # pragma: no cover - defensive
                raise RuntimeError("release() without a matching try_acquire()")
            self._inflight -= 1
            self._cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def rejected(self) -> int:
        """Total requests shed with 429 since startup."""
        with self._cond:
            return self._rejected

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request released, or ``timeout``.

        Returns ``True`` if the gate drained, ``False`` on deadline —
        the drain path uses this to decide between a clean exit and a
        "gave up waiting" message.
        """
        with self._cond:
            return self._cond.wait_for(lambda: self._inflight == 0, timeout=timeout)


@dataclass
class Flight:
    """One coalescing group: a leader solving, followers parked."""

    key: str
    done: threading.Event = field(default_factory=threading.Event)
    #: Opaque payload the leader publishes for diagnostics; followers
    #: re-read the cache rather than trusting this blindly.
    outcome: Any = None
    followers: int = 0


class SingleFlight:
    """Coalesce concurrent identical work under a string key.

    Protocol::

        flight, leader = sf.join(key)
        if leader:
            try:
                outcome = ...          # the one real solve
            finally:
                sf.finish(flight, outcome)
        else:
            sf.wait(flight)            # park, slot-free
            # then re-check the cache: the leader's store is visible.

    ``finish`` is in a ``finally`` for a reason: a leader that errors
    must still release its followers (they will miss the cache and
    take the normal path themselves) — otherwise they park forever.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[str, Flight] = {}
        self._coalesced = 0

    def join(self, key: str):
        """Enter the group for ``key``; returns ``(flight, is_leader)``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = Flight(key=key)
                self._flights[key] = flight
                return flight, True
            flight.followers += 1
            self._coalesced += 1
            return flight, False

    def finish(self, flight: Flight, outcome: Any = None) -> None:
        """Leader-only: publish and release every follower."""
        with self._lock:
            flight.outcome = outcome
            self._flights.pop(flight.key, None)
        flight.done.set()

    def wait(self, flight: Flight, timeout: Optional[float] = None) -> bool:
        """Follower-only: park until the leader finishes."""
        return flight.done.wait(timeout=timeout)

    @property
    def coalesced(self) -> int:
        """Total follower requests coalesced since startup."""
        with self._lock:
            return self._coalesced
