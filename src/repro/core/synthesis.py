"""PUCS / PLCS synthesis — the paper's main algorithm (Section 7).

Pipeline, per Section 7:

1. **Template** — a degree-``d`` polynomial with unknown coefficients at
   every non-terminal label; ``h(l_out) = 0`` (conditions (C1), (C2)).
2. **Pre-expectation** — symbolic ``pre_h`` pieces per label
   (Definition 6.3, computed by :mod:`repro.core.preexpectation`).
3. **Handelman extraction** — each required inequality
   ``h - pre_h >= 0`` (PUCS, condition (C3)) or ``pre_h - h >= 0``
   (PLCS, condition (C3')) on the label's invariant becomes a
   certificate ``g = sum c_k f_k`` with fresh ``c_k >= 0``
   (:mod:`repro.core.handelman`).
4. **LP** — minimize (PUCS) or maximize (PLCS) the bound value
   ``h(l_in, v*)`` at the anchor valuation subject to the certificate
   equalities (:mod:`repro.core.lp`).

Nondeterminism: a PUCS must dominate *every* successor of a
nondeterministic label (``pre_h`` is a max), so one constraint per
successor is emitted.  A PLCS only needs to be dominated by *some*
successor; :func:`synthesize_plcs` enumerates the (few) branch-choice
combinations and keeps the best feasible bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import InfeasibleError, SynthesisError, UnboundedError
from ..invariants import InvariantMap, Polyhedron
from ..polynomials import LinForm, Polynomial
from ..semantics.cfg import CFG, NondetLabel, TerminalLabel
from .handelman import certificate_equalities
from .lp import LinearProgram
from .preexpectation import pre_expectation_cases
from .templates import Template, make_template

__all__ = ["BoundResult", "SynthesisOptions", "synthesize", "synthesize_pucs", "synthesize_plcs"]

#: Enumerating nondeterministic policies for PLCS is exponential in the
#: number of nondeterministic labels; above this many we fall back to
#: the then-branch policy instead of enumerating.
_MAX_NONDET_ENUMERATION = 6


@dataclass
class SynthesisOptions:
    """Knobs of the synthesis algorithm.

    ``degree``
        Template degree ``d`` (condition (C1)).
    ``nonnegative``
        Additionally require ``h >= 0`` on every label's invariant —
        needed for the nonnegative-cost soundness case (Theorem 6.14).
    ``max_multiplicands``
        Cap ``K`` on Handelman multiplicands; ``None`` picks, per
        constraint site, the degree of the target polynomial (the
        smallest cap that can possibly match it).
    """

    degree: int = 2
    nonnegative: bool = False
    max_multiplicands: Optional[int] = None


@dataclass
class BoundResult:
    """A synthesized cost (super/sub)martingale and the bound it proves."""

    kind: str  # "upper" (PUCS) or "lower" (PLCS)
    degree: int
    h: Dict[int, Polynomial]
    bound: Polynomial  # h at the entry label, numeric
    value: float  # bound evaluated at the anchor valuation
    anchor: Dict[str, float]
    lp_variables: int = 0
    lp_equalities: int = 0
    runtime: float = 0.0
    nondet_choices: Optional[Dict[int, int]] = None
    options: SynthesisOptions = field(default_factory=SynthesisOptions)

    def bound_at(self, valuation: Mapping[str, float]) -> float:
        """Evaluate the entry bound at another initial valuation.

        Remark 7 of the paper: the synthesized polynomial is a valid
        bound for *every* initial valuation satisfying the invariant,
        not just the anchor it was optimized for.
        """
        full = dict(valuation)
        for var in self.bound.variables():
            full.setdefault(var, 0.0)
        return self.bound.evaluate_numeric(full)

    def __repr__(self) -> str:
        return f"BoundResult({self.kind}, h(l_in) = {self.bound.round(6)}, value = {self.value:.6g})"


# ---------------------------------------------------------------------------
# Constraint-site generation
# ---------------------------------------------------------------------------

#: One Handelman site: (name, target polynomial g, constraint set Gamma).
_Site = Tuple[str, Polynomial, List[Polynomial]]


def _constraint_sites(
    cfg: CFG,
    template: Template,
    invariants: InvariantMap,
    kind: str,
    nondet_choices: Mapping[int, int],
    nonnegative: bool,
) -> Iterator[_Site]:
    h = template.polys
    for label in cfg:
        if isinstance(label, TerminalLabel):
            continue
        region = invariants.get(label.id)
        cases = pre_expectation_cases(cfg, h, label)
        for case_index, case in enumerate(cases):
            if isinstance(label, NondetLabel) and kind == "lower":
                # (C3') at a nondet label: max over successors >= h is
                # witnessed by the policy's chosen successor only.
                if case.choice != nondet_choices.get(label.id, 0):
                    continue
            if kind == "upper":
                target = h[label.id] - case.poly
            else:
                target = case.poly - h[label.id]
            # The inequality must hold on the whole invariant region:
            # one Handelman site per polyhedron of the union.
            for d_index, polyhedron in enumerate(region):
                gammas = polyhedron.constraints + [atom.poly for atom in case.guard]
                yield (f"l{label.id}_{case_index}_{d_index}", target, gammas)
        if nonnegative:
            for d_index, polyhedron in enumerate(region):
                yield (f"l{label.id}_nn_{d_index}", h[label.id], polyhedron.constraints)


# ---------------------------------------------------------------------------
# Single-policy synthesis
# ---------------------------------------------------------------------------


def _synthesize_once(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    kind: str,
    options: SynthesisOptions,
    nondet_choices: Mapping[int, int],
) -> BoundResult:
    start = time.perf_counter()
    template = make_template(cfg, options.degree)

    lp = LinearProgram()
    for name in template.unknowns:
        lp.add_unknown(name, nonnegative=False)

    for site_name, target, gammas in _constraint_sites(
        cfg, template, invariants, kind, nondet_choices, options.nonnegative
    ):
        cap = options.max_multiplicands
        if cap is None:
            cap = max(target.degree(), 1)
        equalities, multipliers = certificate_equalities(target, gammas, cap, site_name)
        for c_name in multipliers:
            lp.add_unknown(c_name, nonnegative=True)
        for coeffs, rhs in equalities:
            lp.add_equality(coeffs, rhs)

    anchor = {var: float(init.get(var, 0.0)) for var in cfg.pvars}
    objective = template.at(cfg.entry).evaluate(anchor)
    if not isinstance(objective, LinForm):
        objective = LinForm(float(objective))
    lp.set_objective(objective, maximize=(kind == "lower"))

    solution = lp.solve()
    h_numeric = template.instantiate(solution.values)
    bound = h_numeric[cfg.entry]
    return BoundResult(
        kind=kind,
        degree=options.degree,
        h=h_numeric,
        bound=bound,
        value=solution.objective,
        anchor=anchor,
        lp_variables=solution.num_variables,
        lp_equalities=solution.num_equalities,
        runtime=time.perf_counter() - start,
        nondet_choices=dict(nondet_choices) or None,
        options=options,
    )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def synthesize(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    kind: str = "upper",
    degree: int = 2,
    nonnegative: bool = False,
    max_multiplicands: Optional[int] = None,
    nondet_choices: Optional[Mapping[int, int]] = None,
) -> BoundResult:
    """Synthesize a PUCS (``kind="upper"``) or PLCS (``kind="lower"``).

    ``init`` is the anchor valuation ``v*`` the bound is optimized for
    (Remark 7); the returned polynomial bound remains sound for every
    valuation in the entry invariant.
    """
    if kind not in ("upper", "lower"):
        raise ValueError("kind must be 'upper' or 'lower'")
    options = SynthesisOptions(
        degree=degree, nonnegative=nonnegative, max_multiplicands=max_multiplicands
    )

    nondet_labels = cfg.nondet_labels()
    if kind == "upper" or not nondet_labels:
        return _synthesize_once(cfg, invariants, init, kind, options, nondet_choices or {})

    if nondet_choices is not None:
        return _synthesize_once(cfg, invariants, init, kind, options, nondet_choices)

    # PLCS with nondeterminism: enumerate branch policies, keep the best.
    if len(nondet_labels) > _MAX_NONDET_ENUMERATION:
        policy = {label.id: 0 for label in nondet_labels}
        return _synthesize_once(cfg, invariants, init, kind, options, policy)

    best: Optional[BoundResult] = None
    failures: List[str] = []
    for combo in iter_product((0, 1), repeat=len(nondet_labels)):
        policy = {label.id: choice for label, choice in zip(nondet_labels, combo)}
        try:
            candidate = _synthesize_once(cfg, invariants, init, kind, options, policy)
        except SynthesisError as exc:
            failures.append(f"policy {policy}: {exc}")
            continue
        if best is None or candidate.value > best.value:
            best = candidate
    if best is None:
        raise InfeasibleError(
            "no PLCS found under any nondeterministic policy; " + "; ".join(failures)
        )
    return best


def synthesize_pucs(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    degree: int = 2,
    nonnegative: bool = False,
    max_multiplicands: Optional[int] = None,
) -> BoundResult:
    """Upper bound on the maximal expected accumulated cost (Thms 6.10, 6.14)."""
    return synthesize(
        cfg,
        invariants,
        init,
        kind="upper",
        degree=degree,
        nonnegative=nonnegative,
        max_multiplicands=max_multiplicands,
    )


def synthesize_plcs(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    degree: int = 2,
    max_multiplicands: Optional[int] = None,
    nondet_choices: Optional[Mapping[int, int]] = None,
) -> BoundResult:
    """Lower bound on the maximal expected accumulated cost (Thm 6.12)."""
    return synthesize(
        cfg,
        invariants,
        init,
        kind="lower",
        degree=degree,
        max_multiplicands=max_multiplicands,
        nondet_choices=nondet_choices,
    )
