"""PUCS / PLCS synthesis — the paper's main algorithm (Section 7).

Pipeline, per Section 7:

1. **Template** — a degree-``d`` polynomial with unknown coefficients at
   every non-terminal label; ``h(l_out) = 0`` (conditions (C1), (C2)).
2. **Pre-expectation** — symbolic ``pre_h`` pieces per label
   (Definition 6.3, computed by :mod:`repro.core.preexpectation`).
3. **Handelman extraction** — each required inequality
   ``h - pre_h >= 0`` (PUCS, condition (C3)) or ``pre_h - h >= 0``
   (PLCS, condition (C3')) on the label's invariant becomes a
   certificate ``g = sum c_k f_k`` with fresh ``c_k >= 0``
   (:mod:`repro.core.handelman`).
4. **LP** — minimize (PUCS) or maximize (PLCS) the bound value
   ``h(l_in, v*)`` at the anchor valuation subject to the certificate
   equalities (:mod:`repro.core.lp`).

Nondeterminism: a PUCS must dominate *every* successor of a
nondeterministic label (``pre_h`` is a max), so one constraint per
successor is emitted.  A PLCS only needs to be dominated by *some*
successor; :func:`synthesize_plcs` enumerates the (few) branch-choice
combinations and keeps the best feasible bound.

Performance notes
-----------------
The expensive work — template construction, pre-expectation cases and
Handelman certificate extraction — is *policy independent* except at
the nondeterministic labels themselves.  :class:`_PreparedSynthesis`
computes everything once, keeps the per-``(label, choice)`` certificate
rows separately, and each of the up-to-``2^k`` policy LPs only stitches
precomputed rows together before solving.  The template and its
pre-expectation cases are additionally memoised per CFG and degree, so
the PUCS and PLCS runs of one analysis share them.
"""

from __future__ import annotations

import math
import time
import weakref
from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..deadline import check_deadline
from ..errors import InfeasibleError, SynthesisError
from ..invariants import InvariantMap
from ..polynomials import LinForm, Polynomial
from ..semantics.cfg import CFG, NondetLabel, TerminalLabel
from .handelman import LinearEquality, certificate_equalities
from .lp import LinearProgram
from .preexpectation import PreCase, pre_expectation_cases, step_difference_cases
from .templates import Template, make_template

__all__ = [
    "BoundResult",
    "SynthesisOptions",
    "difference_bound",
    "synthesize",
    "synthesize_pucs",
    "synthesize_plcs",
]

#: Enumerating nondeterministic policies for PLCS is exponential in the
#: number of nondeterministic labels; above this many we fall back to
#: the then-branch policy instead of enumerating.
_MAX_NONDET_ENUMERATION = 6


@dataclass
class SynthesisOptions:
    """Knobs of the synthesis algorithm.

    ``degree``
        Template degree ``d`` (condition (C1)).
    ``nonnegative``
        Additionally require ``h >= 0`` on every label's invariant —
        needed for the nonnegative-cost soundness case (Theorem 6.14).
    ``max_multiplicands``
        Cap ``K`` on Handelman multiplicands; ``None`` picks, per
        constraint site, the degree of the target polynomial (the
        smallest cap that can possibly match it).
    """

    degree: int = 2
    nonnegative: bool = False
    max_multiplicands: Optional[int] = None


@dataclass
class BoundResult:
    """A synthesized cost (super/sub)martingale and the bound it proves."""

    kind: str  # "upper" (PUCS) or "lower" (PLCS)
    degree: int
    h: Dict[int, Polynomial]
    bound: Polynomial  # h at the entry label, numeric
    value: float  # bound evaluated at the anchor valuation
    anchor: Dict[str, float]
    lp_variables: int = 0
    lp_equalities: int = 0
    runtime: float = 0.0
    nondet_choices: Optional[Dict[int, int]] = None
    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    #: False when the PLCS policy space was *not* exhaustively explored
    #: (too many nondeterministic labels, so a fixed fallback policy was
    #: used) — the bound is still sound but may be suboptimal.
    policy_enumerated: bool = True
    #: Non-fatal conditions encountered while producing this bound;
    #: :func:`repro.analysis.analyze` copies these onto the result.
    warnings: List[str] = field(default_factory=list)

    def bound_at(self, valuation: Mapping[str, float]) -> float:
        """Evaluate the entry bound at another initial valuation.

        Remark 7 of the paper: the synthesized polynomial is a valid
        bound for *every* initial valuation satisfying the invariant,
        not just the anchor it was optimized for.
        """
        full = dict(valuation)
        for var in self.bound.variables():
            full.setdefault(var, 0.0)
        return self.bound.evaluate_numeric(full)

    def __repr__(self) -> str:
        return f"BoundResult({self.kind}, h(l_in) = {self.bound.round(6)}, value = {self.value:.6g})"


# ---------------------------------------------------------------------------
# Template / pre-expectation memoisation (shared by PUCS and PLCS runs)
# ---------------------------------------------------------------------------

#: cfg -> {degree: (template, {label_id: cases})}.  Templates are
#: deterministic in (cfg, degree) — same unknown names, same polynomials
#: — so sharing them across synthesis kinds is observationally free.
_TEMPLATE_CACHE: "weakref.WeakKeyDictionary[CFG, Dict[int, tuple]]" = weakref.WeakKeyDictionary()


def clear_template_cache() -> None:
    """Drop memoised templates and pre-expectation cases (benchmarks)."""
    _TEMPLATE_CACHE.clear()


def _template_and_cases(cfg: CFG, degree: int) -> Tuple[Template, Dict[int, List[PreCase]]]:
    try:
        per_cfg = _TEMPLATE_CACHE.setdefault(cfg, {})
    except TypeError:  # unhashable/unweakrefable CFG: skip caching
        per_cfg = {}
    cached = per_cfg.get(degree)
    if cached is None:
        template = make_template(cfg, degree)
        cases = {
            label.id: pre_expectation_cases(cfg, template.polys, label)
            for label in cfg
            if not isinstance(label, TerminalLabel)
        }
        cached = (template, cases)
        per_cfg[degree] = cached
    return cached


# ---------------------------------------------------------------------------
# Constraint-site generation
# ---------------------------------------------------------------------------

#: One Handelman site: (policy tag, name, target polynomial g, Gamma).
#: ``tag`` is ``None`` for policy-independent sites and
#: ``(label_id, choice)`` for the per-successor PLCS sites.
_Site = Tuple[Optional[Tuple[int, int]], str, Polynomial, List[Polynomial]]


def _constraint_sites(
    cfg: CFG,
    template: Template,
    cases_by_label: Mapping[int, List[PreCase]],
    invariants: InvariantMap,
    kind: str,
    nonnegative: bool,
) -> Iterator[_Site]:
    h = template.polys
    for label in cfg:
        if isinstance(label, TerminalLabel):
            continue
        region = invariants.get(label.id)
        for case_index, case in enumerate(cases_by_label[label.id]):
            tag = None
            if isinstance(label, NondetLabel) and kind == "lower":
                # (C3') at a nondet label: max over successors >= h is
                # witnessed by the policy's chosen successor only.
                tag = (label.id, case.choice)
            if kind == "upper":
                target = h[label.id] - case.poly
            else:
                target = case.poly - h[label.id]
            # The inequality must hold on the whole invariant region:
            # one Handelman site per polyhedron of the union.
            for d_index, polyhedron in enumerate(region):
                gammas = polyhedron.constraints + [atom.poly for atom in case.guard]
                yield (tag, f"l{label.id}_{case_index}_{d_index}", target, gammas)
        if nonnegative:
            for d_index, polyhedron in enumerate(region):
                yield (None, f"l{label.id}_nn_{d_index}", h[label.id], polyhedron.constraints)


# ---------------------------------------------------------------------------
# Prepared synthesis: certificates once, one LP per policy
# ---------------------------------------------------------------------------

#: Precomputed certificate of one site: (equalities, multiplier names).
_Certificate = Tuple[List[LinearEquality], List[str]]


class _PreparedSynthesis:
    """All policy-independent synthesis work for one (cfg, kind) pair.

    Template construction, pre-expectation cases and Handelman
    certificate extraction happen once here; :meth:`solve` then builds
    and solves the (small) LP of a concrete nondeterministic policy from
    the precomputed rows.
    """

    def __init__(
        self,
        cfg: CFG,
        invariants: InvariantMap,
        kind: str,
        options: SynthesisOptions,
        restrict_to: Optional[Mapping[int, int]] = None,
    ):
        """``restrict_to`` fixes the nondeterministic policy up front:
        certificates for non-chosen successors are skipped entirely.
        Omit it when :meth:`solve` will be called for several policies."""
        start = time.perf_counter()
        self.cfg = cfg
        self.kind = kind
        self.options = options
        self.template, cases_by_label = _template_and_cases(cfg, options.degree)
        self.shared: List[_Certificate] = []
        self.by_choice: Dict[int, Dict[int, List[_Certificate]]] = {}
        for tag, site_name, target, gammas in _constraint_sites(
            cfg, self.template, cases_by_label, invariants, kind, options.nonnegative
        ):
            # Cooperative per-site timeout checkpoint: certificate
            # extraction dominates preparation time, and SIGALRM budgets
            # don't fire on service handler threads.
            check_deadline()
            if tag is not None and restrict_to is not None:
                label_id, choice = tag
                if choice != restrict_to.get(label_id, 0):
                    continue
            cap = options.max_multiplicands
            if cap is None:
                cap = max(target.degree(), 1)
            certificate = certificate_equalities(target, gammas, cap, site_name)
            if tag is None:
                self.shared.append(certificate)
            else:
                label_id, choice = tag
                self.by_choice.setdefault(label_id, {}).setdefault(choice, []).append(certificate)
        #: Certificate-extraction time, charged to every solved policy so
        #: ``BoundResult.runtime`` keeps meaning "time to produce this
        #: bound from scratch" (what the Table 3/4 columns report).
        self.prepare_seconds = time.perf_counter() - start

    def solve(self, init: Mapping[str, float], nondet_choices: Mapping[int, int]) -> BoundResult:
        check_deadline()  # per-policy checkpoint for threaded budgets
        start = time.perf_counter()
        cfg, options = self.cfg, self.options

        selected = list(self.shared)
        for label_id, per_choice in self.by_choice.items():
            selected.extend(per_choice.get(nondet_choices.get(label_id, 0), []))

        lp = LinearProgram()
        for name in self.template.unknowns:
            lp.add_unknown(name, nonnegative=False)
        for equalities, multipliers in selected:
            for c_name in multipliers:
                lp.add_unknown(c_name, nonnegative=True)
            for coeffs, rhs in equalities:
                lp.add_equality(coeffs, rhs)

        anchor = {var: float(init.get(var, 0.0)) for var in cfg.pvars}
        objective = self.template.at(cfg.entry).evaluate(anchor)
        if not isinstance(objective, LinForm):
            objective = LinForm(float(objective))
        lp.set_objective(objective, maximize=(self.kind == "lower"))

        solution = lp.solve()
        if math.isnan(solution.objective):
            # A NaN objective means the solver returned garbage (e.g. a
            # degenerate LP): letting it flow into bound comparisons
            # would silently corrupt best-policy selection downstream.
            raise SynthesisError(
                f"LP solver returned a NaN objective for the {self.kind} bound "
                f"(degree {options.degree}); the program/invariant combination "
                "produced a degenerate LP"
            )
        h_numeric = self.template.instantiate(solution.values)
        bound = h_numeric[cfg.entry]
        return BoundResult(
            kind=self.kind,
            degree=options.degree,
            h=h_numeric,
            bound=bound,
            value=solution.objective,
            anchor=anchor,
            lp_variables=solution.num_variables,
            lp_equalities=solution.num_equalities,
            runtime=self.prepare_seconds + (time.perf_counter() - start),
            nondet_choices=dict(nondet_choices) or None,
            options=options,
        )


def _synthesize_once(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    kind: str,
    options: SynthesisOptions,
    nondet_choices: Mapping[int, int],
) -> BoundResult:
    prepared = _PreparedSynthesis(cfg, invariants, kind, options, restrict_to=nondet_choices)
    return prepared.solve(init, nondet_choices)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def synthesize(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    kind: str = "upper",
    degree: int = 2,
    nonnegative: bool = False,
    max_multiplicands: Optional[int] = None,
    nondet_choices: Optional[Mapping[int, int]] = None,
) -> BoundResult:
    """Synthesize a PUCS (``kind="upper"``) or PLCS (``kind="lower"``).

    ``init`` is the anchor valuation ``v*`` the bound is optimized for
    (Remark 7); the returned polynomial bound remains sound for every
    valuation in the entry invariant.
    """
    if kind not in ("upper", "lower"):
        raise ValueError("kind must be 'upper' or 'lower'")
    options = SynthesisOptions(
        degree=degree, nonnegative=nonnegative, max_multiplicands=max_multiplicands
    )

    nondet_labels = cfg.nondet_labels()
    if kind == "upper" or not nondet_labels:
        return _synthesize_once(cfg, invariants, init, kind, options, nondet_choices or {})

    if nondet_choices is not None:
        return _synthesize_once(cfg, invariants, init, kind, options, nondet_choices)

    # PLCS with nondeterminism: enumerate branch policies, keep the best.
    # Certificates are policy-independent except at the nondet labels,
    # so prepare once and only re-solve the LP per policy.
    if len(nondet_labels) > _MAX_NONDET_ENUMERATION:
        policy = {label.id: 0 for label in nondet_labels}
        result = _synthesize_once(cfg, invariants, init, kind, options, policy)
        result.policy_enumerated = False
        result.warnings.append(
            f"PLCS policy enumeration skipped: {len(nondet_labels)} nondeterministic "
            f"labels exceed the cap of {_MAX_NONDET_ENUMERATION}; used the all-then "
            "policy, so the lower bound may be suboptimal"
        )
        return result

    prepared = _PreparedSynthesis(cfg, invariants, kind, options)
    best: Optional[BoundResult] = None
    failures: List[str] = []
    for combo in iter_product((0, 1), repeat=len(nondet_labels)):
        policy = {label.id: choice for label, choice in zip(nondet_labels, combo)}
        try:
            candidate = prepared.solve(init, policy)
        except SynthesisError as exc:
            failures.append(f"policy {policy}: {exc}")
            continue
        # NaN-safe comparison: ``candidate.value > best.value`` is False
        # for any NaN operand, which would silently keep (or drop) the
        # wrong candidate.  ``solve`` already raises on NaN objectives;
        # the explicit guard keeps the selection correct even if a
        # NaN-valued result reaches this loop through another path.
        if math.isnan(candidate.value):
            failures.append(f"policy {policy}: NaN objective")
            continue
        if best is None or candidate.value > best.value:
            best = candidate
    if best is None:
        raise InfeasibleError(
            "no PLCS found under any nondeterministic policy; " + "; ".join(failures)
        )
    return best


def difference_bound(
    cfg: CFG,
    invariants: InvariantMap,
    h: Mapping[int, Polynomial],
    max_multiplicands: Optional[int] = None,
) -> float:
    """Smallest certified almost-sure step-difference bound ``c`` of the
    cost supermartingale ``X_n = accumulated cost + h(l_n, v_n)``.

    An auxiliary LP over the same Handelman monoid products as the
    synthesis itself: for every realized one-step outcome ``diff``
    (:func:`~repro.core.preexpectation.step_difference_cases`) on every
    polyhedron of the label's invariant, both ``c - diff >= 0`` and
    ``c + diff >= 0`` are certified, and ``c >= 0`` is minimized.
    ``h`` must be numeric (a synthesized certificate, not a template).

    Raises :class:`InfeasibleError` when no constant bound exists —
    e.g. a quadratic certificate whose gradient is unbounded on the
    invariant, or a variable-dependent tick cost over an unbounded
    region — and :class:`UnboundedError` for unbounded sampling
    support.  Tail-bound callers treat both as "no Azuma bound at this
    degree" and may retry with a lower-degree certificate.
    """
    lp = LinearProgram()
    c_name = "tail_c"
    lp.add_unknown(c_name, nonnegative=True)
    c_poly = Polynomial.constant(LinForm.unknown(c_name))

    sites = 0
    for label in cfg:
        if isinstance(label, TerminalLabel):
            continue
        region = invariants.get(label.id)
        for case_index, case in enumerate(step_difference_cases(cfg, h, label)):
            check_deadline()
            if case.diff.is_zero():
                continue  # a self-loop-free no-op step never moves X
            for d_index, polyhedron in enumerate(region):
                gammas = polyhedron.constraints + [atom.poly for atom in case.guard] + case.support
                for sign, target in (("up", c_poly - case.diff), ("dn", c_poly + case.diff)):
                    cap = max_multiplicands
                    if cap is None:
                        cap = max(target.degree(), 1)
                    equalities, multipliers = certificate_equalities(
                        target, gammas, cap, f"diff_{label.id}_{case_index}_{d_index}_{sign}"
                    )
                    for name in multipliers:
                        lp.add_unknown(name, nonnegative=True)
                    for coeffs, rhs in equalities:
                        lp.add_equality(coeffs, rhs)
                    sites += 1

    if sites == 0:
        return 0.0
    lp.set_objective(LinForm.unknown(c_name), maximize=False)
    solution = lp.solve()
    value = solution.values.get(c_name, solution.objective)
    if math.isnan(value):
        raise SynthesisError("difference-bound LP returned a NaN objective")
    return max(0.0, float(value))


def synthesize_pucs(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    degree: int = 2,
    nonnegative: bool = False,
    max_multiplicands: Optional[int] = None,
) -> BoundResult:
    """Upper bound on the maximal expected accumulated cost (Thms 6.10, 6.14)."""
    return synthesize(
        cfg,
        invariants,
        init,
        kind="upper",
        degree=degree,
        nonnegative=nonnegative,
        max_multiplicands=max_multiplicands,
    )


def synthesize_plcs(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    degree: int = 2,
    max_multiplicands: Optional[int] = None,
    nondet_choices: Optional[Mapping[int, int]] = None,
) -> BoundResult:
    """Lower bound on the maximal expected accumulated cost (Thm 6.12)."""
    return synthesize(
        cfg,
        invariants,
        init,
        kind="lower",
        degree=degree,
        max_multiplicands=max_multiplicands,
        nondet_choices=nondet_choices,
    )
