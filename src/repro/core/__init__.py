"""The paper's primary contribution: PUCS/PLCS synthesis via Handelman + LP."""

from .conditions import (
    AnalysisMode,
    ConditionReport,
    check_bounded_costs,
    check_bounded_updates,
    check_nonnegative_costs,
    classify,
)
from .handelman import certificate_equalities, monoid_products
from .lp import LinearProgram, LPSolution
from .solvers import (
    SolveOutcome,
    SolverBackend,
    available_backends,
    default_backend_id,
    get_backend,
    register_backend,
    resolve_backend,
    use_solver,
)
from .preexpectation import (
    PreCase,
    StepCase,
    pre_expectation_cases,
    pre_expectation_table,
    pre_expectation_value,
    step_difference_cases,
)
from .synthesis import (
    BoundResult,
    SynthesisOptions,
    difference_bound,
    synthesize,
    synthesize_plcs,
    synthesize_pucs,
)
from .templates import Template, make_template

__all__ = [
    "AnalysisMode",
    "BoundResult",
    "ConditionReport",
    "LPSolution",
    "LinearProgram",
    "PreCase",
    "SolveOutcome",
    "SolverBackend",
    "StepCase",
    "SynthesisOptions",
    "Template",
    "available_backends",
    "certificate_equalities",
    "default_backend_id",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "use_solver",
    "check_bounded_costs",
    "check_bounded_updates",
    "check_nonnegative_costs",
    "classify",
    "difference_bound",
    "make_template",
    "monoid_products",
    "pre_expectation_cases",
    "pre_expectation_table",
    "pre_expectation_value",
    "step_difference_cases",
    "synthesize",
    "synthesize_plcs",
    "synthesize_pucs",
]
