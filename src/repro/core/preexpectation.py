"""The pre-expectation calculus of Definition 6.3.

Given a function ``h : L x Val -> R`` (numeric or a symbolic template),
``pre_h(l, v)`` is the cost of the current step plus the expected value
of ``h`` one step later:

* assignment ``x := e``:       ``E_u[h(l', e(v, u))]``
* branching on ``phi``:        ``1_{v |= phi} h(l1, v) + 1_{v |/= phi} h(l2, v)``
* probabilistic ``prob(p)``:   ``p h(l1, v) + (1-p) h(l2, v)``
* tick(``R``):                 ``R(v) + h(l', v)``
* nondeterministic:            ``max`` over successors
* terminal:                    ``h(l_out, v)``

Two views are provided: :func:`pre_expectation_cases` decomposes
``pre_h`` into guarded polynomial pieces (what the Handelman reduction
consumes — indicators and max do not mix with polynomial identities),
and :func:`pre_expectation_value` evaluates Definition 6.3 literally at
a numeric state (what the Figure 9 table and the martingale validator
use).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import CFGError
from ..polynomials import Polynomial, expectation
from ..semantics.cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    Label,
    NondetLabel,
    ProbLabel,
    TerminalLabel,
    TickLabel,
)
from ..syntax.ast import Atom

__all__ = ["PreCase", "StepCase", "pre_expectation_cases", "pre_expectation_value", "step_difference_cases"]


@dataclass
class PreCase:
    """One guarded piece of ``pre_h`` at a label.

    ``pre_h(l, v) = poly(v)`` whenever ``v`` additionally satisfies the
    (possibly empty) conjunction ``guard``.  For nondeterministic labels
    ``choice`` records which successor the piece corresponds to (the
    pieces jointly under-approximate the ``max``).
    """

    poly: Polynomial
    guard: List[Atom] = field(default_factory=list)
    choice: Optional[int] = None


def pre_expectation_cases(cfg: CFG, h: Mapping[int, Polynomial], label: Label) -> List[PreCase]:
    """Decompose ``pre_h`` at ``label`` into guarded polynomial cases.

    ``h`` maps label ids to polynomials (numeric or templates).  The
    union of the returned guards covers the label's invariant:

    * assignment / probabilistic / tick labels yield a single unguarded
      case;
    * a branching label yields one case per DNF disjunct of its guard
      and one per disjunct of the negated guard (strict inequalities
      relaxed — sound for both (C3) and (C3'));
    * a nondeterministic label yields one case per successor, tagged
      with ``choice``.
    """
    if isinstance(label, TerminalLabel):
        return [PreCase(poly=h[label.id])]
    if isinstance(label, AssignLabel):
        substituted = h[label.succ].substitute(label.var, label.expr)
        return [PreCase(poly=expectation(substituted, cfg.rvars))]
    if isinstance(label, TickLabel):
        return [PreCase(poly=label.cost + h[label.succ])]
    if isinstance(label, ProbLabel):
        if label.succ_then == label.succ_else:
            return [PreCase(poly=h[label.succ_then])]
        blended = h[label.succ_then] * label.prob + h[label.succ_else] * (1.0 - label.prob)
        return [PreCase(poly=blended)]
    if isinstance(label, BranchLabel):
        cases: List[PreCase] = []
        for conj in label.cond.to_dnf():
            cases.append(PreCase(poly=h[label.succ_true], guard=[a.relaxed() for a in conj]))
        for conj in label.cond.negate().to_dnf():
            cases.append(PreCase(poly=h[label.succ_false], guard=[a.relaxed() for a in conj]))
        return cases
    if isinstance(label, NondetLabel):
        return [
            PreCase(poly=h[label.succ_then], choice=0),
            PreCase(poly=h[label.succ_else], choice=1),
        ]
    raise CFGError(f"unknown label kind {label.kind!r}")


@dataclass
class StepCase:
    """One *realized* one-step outcome at a label (no expectation).

    Where :class:`PreCase` averages over sampling variables (what the
    martingale conditions need), a step case keeps the post-step value
    ``h(l', v')`` as a polynomial in the current state *and* the raw
    sampling variables — what an almost-sure (Azuma-style) difference
    bound needs.  ``support`` carries the linear constraints bounding
    each sampling variable to its distribution support, ready to join a
    Handelman ``Gamma``.
    """

    #: ``cost + h(l', v') - h(l, v)`` for this outcome.
    diff: Polynomial
    guard: List[Atom] = field(default_factory=list)
    #: Support constraints ``r - lo >= 0``, ``hi - r >= 0`` for every
    #: sampling variable the outcome mentions.
    support: List[Polynomial] = field(default_factory=list)


def step_difference_cases(cfg: CFG, h: Mapping[int, Polynomial], label: Label) -> List[StepCase]:
    """All realized one-step differences of ``cost-so-far + h`` at ``label``.

    Every possible single transition out of ``label`` contributes one
    case: each branch/probabilistic/nondeterministic successor, and for
    assignments the substituted (pre-expectation-*free*) post-state.
    Bounding ``|diff| <= c`` over every case on the label's invariant
    bounds the stepwise differences of the cost supermartingale
    ``X_n = accumulated cost + h(l_n, v_n)`` almost surely, which is
    exactly the premise of the Azuma–Hoeffding tail bound.

    Raises :class:`~repro.errors.UnboundedError` when an assignment
    samples from a distribution with unbounded support — no constant
    almost-sure difference bound can exist then.
    """
    from ..errors import UnboundedError

    if isinstance(label, TerminalLabel):
        return []
    here = h[label.id]
    if isinstance(label, AssignLabel):
        realized = h[label.succ].substitute(label.var, label.expr)
        support: List[Polynomial] = []
        for var in sorted(realized.variables()):
            dist = cfg.rvars.get(var)
            if dist is None:
                continue
            lo, hi = dist.support_bounds()
            if not (math.isfinite(lo) and math.isfinite(hi)):
                raise UnboundedError(
                    f"sampling variable {var!r} has unbounded support; "
                    "no almost-sure step-difference bound exists"
                )
            support.append(Polynomial.variable(var) - lo)
            support.append(Polynomial.constant(hi) - Polynomial.variable(var))
        return [StepCase(diff=realized - here, support=support)]
    if isinstance(label, TickLabel):
        return [StepCase(diff=label.cost + h[label.succ] - here)]
    if isinstance(label, ProbLabel):
        if label.succ_then == label.succ_else:
            return [StepCase(diff=h[label.succ_then] - here)]
        return [
            StepCase(diff=h[label.succ_then] - here),
            StepCase(diff=h[label.succ_else] - here),
        ]
    if isinstance(label, BranchLabel):
        cases: List[StepCase] = []
        for conj in label.cond.to_dnf():
            cases.append(StepCase(diff=h[label.succ_true] - here, guard=[a.relaxed() for a in conj]))
        for conj in label.cond.negate().to_dnf():
            cases.append(StepCase(diff=h[label.succ_false] - here, guard=[a.relaxed() for a in conj]))
        return cases
    if isinstance(label, NondetLabel):
        return [
            StepCase(diff=h[label.succ_then] - here),
            StepCase(diff=h[label.succ_else] - here),
        ]
    raise CFGError(f"unknown label kind {label.kind!r}")


def pre_expectation_value(
    cfg: CFG,
    h: Mapping[int, Polynomial],
    label_id: int,
    valuation: Mapping[str, float],
) -> float:
    """Evaluate Definition 6.3 exactly at a numeric configuration.

    ``h`` must be numeric here.  Indicators are evaluated, the
    nondeterministic ``max`` is taken over both successors, and the
    expectation over sampling variables uses exact moments.
    """
    label = cfg.labels[label_id]
    if isinstance(label, TerminalLabel):
        return h[label.id].evaluate_numeric(valuation)
    if isinstance(label, AssignLabel):
        substituted = h[label.succ].substitute(label.var, label.expr)
        return expectation(substituted, cfg.rvars).evaluate_numeric(valuation)
    if isinstance(label, TickLabel):
        return (label.cost + h[label.succ]).evaluate_numeric(valuation)
    if isinstance(label, ProbLabel):
        then_v = h[label.succ_then].evaluate_numeric(valuation)
        else_v = h[label.succ_else].evaluate_numeric(valuation)
        return label.prob * then_v + (1.0 - label.prob) * else_v
    if isinstance(label, BranchLabel):
        taken = label.succ_true if label.cond.evaluate(valuation) else label.succ_false
        return h[taken].evaluate_numeric(valuation)
    if isinstance(label, NondetLabel):
        return max(
            h[label.succ_then].evaluate_numeric(valuation),
            h[label.succ_else].evaluate_numeric(valuation),
        )
    raise CFGError(f"unknown label kind {label.kind!r}")


def pre_expectation_table(
    cfg: CFG, h: Mapping[int, Polynomial]
) -> Dict[int, List[PreCase]]:
    """``pre_h`` cases for every label — the symbolic analogue of the
    Figure 9 / Table 1 tables in the paper."""
    return {label.id: pre_expectation_cases(cfg, h, label) for label in cfg}
