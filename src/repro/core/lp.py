"""Linear-programming backend (Section 7, step (4)).

A thin, explicit wrapper over :func:`scipy.optimize.linprog` (HiGHS).
The synthesis pipeline only needs:

* unknowns that are either free (template coefficients ``a_ij``) or
  nonnegative (Handelman multipliers ``c_k``);
* equality rows from coefficient matching;
* a linear objective (the bound value at the anchor valuation).

Infeasibility and unboundedness are turned into the library's typed
exceptions so callers can retry with different parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..errors import InfeasibleError, SynthesisError, UnboundedError
from ..polynomials import LinForm

__all__ = ["LinearProgram", "LPSolution"]


@dataclass
class LPSolution:
    """A solved LP: unknown values plus solver metadata."""

    values: Dict[str, float]
    objective: float
    num_variables: int
    num_equalities: int

    def __getitem__(self, name: str) -> float:
        return self.values[name]


class LinearProgram:
    """An LP under construction: ``min/max c.x  s.t.  A_eq x = b, bounds``."""

    def __init__(self):
        self._index: Dict[str, int] = {}
        self._nonneg: List[bool] = []
        self._rows: List[Dict[str, float]] = []
        self._rhs: List[float] = []
        self._objective: Optional[LinForm] = None
        self._maximize = False

    # -- construction -------------------------------------------------------

    def add_unknown(self, name: str, nonnegative: bool = False) -> None:
        """Register an unknown; re-registration must agree on the sign."""
        if name in self._index:
            if self._nonneg[self._index[name]] != nonnegative:
                raise SynthesisError(f"unknown {name!r} registered with conflicting signs")
            return
        self._index[name] = len(self._nonneg)
        self._nonneg.append(nonnegative)

    def add_equality(self, coeffs: Mapping[str, float], rhs: float) -> None:
        """Add the row ``sum(coeffs[u] * u) = rhs``.

        Unknowns must have been registered.  All-zero rows are checked
        for consistency immediately.
        """
        cleaned = {}
        for name, coeff in coeffs.items():
            if name not in self._index:
                raise SynthesisError(f"equality references unregistered unknown {name!r}")
            if coeff != 0.0:
                cleaned[name] = float(coeff)
        if not cleaned:
            if abs(rhs) > 1e-9:
                raise InfeasibleError(f"contradictory constant equality 0 = {rhs}")
            return
        self._rows.append(cleaned)
        self._rhs.append(float(rhs))

    def set_objective(self, form: LinForm, maximize: bool = False) -> None:
        for name in form.terms:
            if name not in self._index:
                raise SynthesisError(f"objective references unregistered unknown {name!r}")
        self._objective = form
        self._maximize = maximize

    # -- inspection -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._index)

    @property
    def num_equalities(self) -> int:
        return len(self._rows)

    # -- solving ----------------------------------------------------------------

    def solve(self) -> LPSolution:
        """Solve with HiGHS; raises on infeasible/unbounded outcomes."""
        n = len(self._index)
        if n == 0:
            raise SynthesisError("linear program has no unknowns")

        c = np.zeros(n)
        offset = 0.0
        if self._objective is not None:
            offset = self._objective.const
            for name, coeff in self._objective.terms.items():
                c[self._index[name]] = coeff
        if self._maximize:
            c = -c

        if self._rows:
            a_eq = np.zeros((len(self._rows), n))
            for i, row in enumerate(self._rows):
                for name, coeff in row.items():
                    a_eq[i, self._index[name]] = coeff
            b_eq = np.asarray(self._rhs)
        else:
            a_eq, b_eq = None, None

        bounds: List[Tuple[Optional[float], Optional[float]]] = [
            (0.0, None) if nonneg else (None, None) for nonneg in self._nonneg
        ]

        result = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if result.status not in (0, 2, 3):
            # Solver hiccup (e.g. HiGHS status 4 on badly scaled inputs):
            # retry without presolve before giving up.
            result = linprog(
                c,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
                options={"presolve": False},
            )
        if result.status == 2:
            raise InfeasibleError(
                "no Handelman certificate of the requested degree exists; "
                "try a higher template degree, a larger multiplicand cap, "
                "or stronger invariants"
            )
        if result.status == 3:
            raise UnboundedError("LP objective is unbounded; the invariant is too weak to pin a bound")
        if result.status != 0:
            raise SynthesisError(f"LP solver failed: {result.message}")

        values = {name: float(result.x[idx]) for name, idx in self._index.items()}
        objective = float(result.fun) * (-1.0 if self._maximize else 1.0) + offset
        return LPSolution(
            values=values,
            objective=objective,
            num_variables=n,
            num_equalities=len(self._rows),
        )
