"""Linear-programming backend (Section 7, step (4)).

A thin, explicit wrapper over HiGHS.  The synthesis pipeline only needs:

* unknowns that are either free (template coefficients ``a_ij``) or
  nonnegative (Handelman multipliers ``c_k``);
* equality rows from coefficient matching;
* a linear objective (the bound value at the anchor valuation).

Infeasibility and unboundedness are turned into the library's typed
exceptions so callers can retry with different parameters.

Performance notes
-----------------
Equality rows are held sparsely (name -> coefficient dicts), duplicate
rows are dropped at insertion, and the constraint matrix is assembled
directly in CSR form — the dense ``np.zeros((rows, n))`` staging array
of the naive implementation dominated LP setup for larger templates.

Solving goes through the pluggable backend registry of
:mod:`repro.core.solvers`.  Two built-in backends register here:

``highs``
    A *direct* call into SciPy's bundled HiGHS bindings
    (``scipy.optimize._highspy``), handing HiGHS the rowwise CSR
    arrays as-is.  The public :func:`scipy.optimize.linprog` wrapper
    re-validates and re-copies every input on each call, which costs
    more than the actual simplex run on this pipeline's many small
    LPs.  On private-API drift it degrades to the ``linprog`` path —
    results are identical, just slower to set up.
``linprog``
    The portable path through the public
    ``linprog(method="highs")`` interface with a sparse matrix.

Which backend runs is decided per solve: an explicit
``solve(backend=...)`` argument, else the thread-local
:func:`repro.core.solvers.use_solver` context the engine/Analyzer
arm, else the environment default (``highs`` when available).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from ..errors import CONSISTENCY_TOL, ZERO_TOL, InfeasibleError, SynthesisError, UnboundedError
from ..polynomials import LinForm
from .solvers import SolveOutcome, active_solver, register_backend, resolve_backend

try:  # pragma: no cover - exercised indirectly via solve()
    import scipy.optimize._highspy._core as _highs_core
except ImportError:  # pragma: no cover
    _highs_core = None

__all__ = [
    "HighsDirectBackend",
    "LinearProgram",
    "LinprogBackend",
    "LPSolution",
    "solve_count",
]

#: Process-wide count of :meth:`LinearProgram.solve` calls.  Purely
#: observational (tests assert e.g. that strict-mode rejection runs
#: zero LP solves); never reset by library code.
_SOLVE_COUNT = [0]


def solve_count() -> int:
    """How many LP solves this process has executed so far."""
    return _SOLVE_COUNT[0]

#: Per-thread cache of configured HiGHS solver instances, keyed by
#: presolve setting.  Constructing ``_Highs()`` and pushing options
#: costs about as much as solving one of this pipeline's small LPs, so
#: solvers are reused (``clearModel`` between solves is ~100x cheaper).
_SOLVER_CACHE = threading.local()


def _cached_solver(presolve: Optional[str]):
    solvers = getattr(_SOLVER_CACHE, "solvers", None)
    if solvers is None:
        solvers = _SOLVER_CACHE.solvers = {}
    solver = solvers.get(presolve)
    if solver is None:
        solver = _highs_core._Highs()
        options = _highs_core.HighsOptions()
        options.output_flag = False
        if presolve is not None:
            options.presolve = presolve
        solver.passOptions(options)
        solvers[presolve] = solver
    else:
        solver.clearModel()
    return solver


@dataclass
class LPSolution:
    """A solved LP: unknown values plus solver metadata."""

    values: Dict[str, float]
    objective: float
    num_variables: int
    num_equalities: int

    def __getitem__(self, name: str) -> float:
        return self.values[name]


class LinearProgram:
    """An LP under construction: ``min/max c.x  s.t.  A_eq x = b, bounds``."""

    def __init__(self):
        self._index: Dict[str, int] = {}
        self._nonneg: List[bool] = []
        self._rows: List[Dict[str, float]] = []
        self._rhs: List[float] = []
        self._row_keys: set = set()
        self._objective: Optional[LinForm] = None
        self._maximize = False

    # -- construction -------------------------------------------------------

    def add_unknown(self, name: str, nonnegative: bool = False) -> None:
        """Register an unknown; re-registration must agree on the sign."""
        if name in self._index:
            if self._nonneg[self._index[name]] != nonnegative:
                raise SynthesisError(f"unknown {name!r} registered with conflicting signs")
            return
        self._index[name] = len(self._nonneg)
        self._nonneg.append(nonnegative)

    def add_equality(self, coeffs: Mapping[str, float], rhs: float) -> None:
        """Add the row ``sum(coeffs[u] * u) = rhs``.

        Unknowns must have been registered.  All-zero rows are checked
        for consistency immediately, and rows identical to an existing
        one (same coefficients and right-hand side) are dropped.
        """
        # Coefficients at or below ZERO_TOL (1e-12) are dropped from
        # mixed rows: HiGHS itself zeroes matrix entries below its
        # ``small_matrix_value`` tolerance (1e-9), so keeping them would
        # not change the solve — dropping them here just makes the rows
        # canonical enough for the duplicate check below to fire.
        cleaned = {}
        dropped = {}
        for name, coeff in coeffs.items():
            if name not in self._index:
                raise SynthesisError(f"equality references unregistered unknown {name!r}")
            if abs(coeff) > ZERO_TOL:
                cleaned[name] = float(coeff)
            elif coeff != 0.0:
                dropped[name] = float(coeff)
        if not cleaned:
            if dropped:
                # Every coefficient is sub-tolerance but not exactly
                # zero: badly scaled, yet a real constraint.  Keep the
                # tiny coefficients (seed behavior) rather than either
                # fabricating 0 = rhs or silently deleting the row.
                cleaned = dropped
            elif abs(rhs) > CONSISTENCY_TOL:
                raise InfeasibleError(f"contradictory constant equality 0 = {rhs}")
            else:
                return
        key = (tuple(sorted(cleaned.items())), float(rhs))
        if key in self._row_keys:
            return
        self._row_keys.add(key)
        self._rows.append(cleaned)
        self._rhs.append(float(rhs))

    def set_objective(self, form: LinForm, maximize: bool = False) -> None:
        for name in form.terms:
            if name not in self._index:
                raise SynthesisError(f"objective references unregistered unknown {name!r}")
        self._objective = form
        self._maximize = maximize

    # -- inspection -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._index)

    @property
    def num_equalities(self) -> int:
        return len(self._rows)

    # -- solving ----------------------------------------------------------------

    def _assemble(self):
        """Objective vector, CSR triplets and bounds for the solver."""
        n = len(self._index)
        c = np.zeros(n)
        offset = 0.0
        if self._objective is not None:
            offset = self._objective.const
            for name, coeff in self._objective.terms.items():
                c[self._index[name]] = coeff
        if self._maximize:
            c = -c

        index = self._index
        data: List[float] = []
        indices: List[int] = []
        indptr: List[int] = [0]
        for row in self._rows:
            for name, coeff in row.items():
                indices.append(index[name])
                data.append(coeff)
            indptr.append(len(indices))
        b_eq = np.asarray(self._rhs, dtype=np.float64)
        return c, offset, data, indices, indptr, b_eq

    def _solve_highs_direct(self, c, data, indices, indptr, b_eq):
        """Solve through SciPy's bundled HiGHS bindings, skipping the
        ``linprog`` validation layers.  Returns ``(status, x, fun)`` with
        linprog-compatible status codes, or ``None`` if HiGHS reports
        something we don't recognise (the caller then falls back)."""
        h = _highs_core
        n = len(self._nonneg)
        lp = h.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = len(self._rows)
        lp.a_matrix_.format_ = h.MatrixFormat.kRowwise
        lp.a_matrix_.num_col_ = n
        lp.a_matrix_.num_row_ = len(self._rows)
        lp.a_matrix_.start_ = np.asarray(indptr, dtype=np.int32)
        lp.a_matrix_.index_ = np.asarray(indices, dtype=np.int32)
        lp.a_matrix_.value_ = np.asarray(data, dtype=np.float64)
        lp.col_cost_ = c
        inf = h.kHighsInf
        lower = np.full(n, -inf)
        lower[np.fromiter(self._nonneg, dtype=bool, count=n)] = 0.0
        lp.col_lower_ = lower
        lp.col_upper_ = np.full(n, inf)
        lp.row_lower_ = b_eq
        lp.row_upper_ = b_eq

        for presolve in (None, "off"):
            solver = _cached_solver(presolve)
            if solver.passModel(lp) == h.HighsStatus.kError:
                return None
            if solver.run() == h.HighsStatus.kError:
                return None
            status = solver.getModelStatus()
            if status == h.HighsModelStatus.kOptimal:
                x = np.asarray(solver.getSolution().col_value)
                return 0, x, solver.getInfo().objective_function_value
            if status == h.HighsModelStatus.kInfeasible:
                return 2, None, None
            if status == h.HighsModelStatus.kUnbounded:
                return 3, None, None
            if status == h.HighsModelStatus.kUnboundedOrInfeasible:
                # Ambiguous with presolve on; re-run without it (same
                # disambiguation scipy's wrapper performs).
                continue
            return None
        return None

    def _solve_linprog(self, c, data, indices, indptr, b_eq):
        """Portable path through the public scipy interface."""
        n = len(self._nonneg)
        if self._rows:
            a_eq = csr_matrix(
                (data, indices, indptr), shape=(len(self._rows), n), dtype=np.float64
            )
        else:
            a_eq, b_eq = None, None
        bounds: List[Tuple[Optional[float], Optional[float]]] = [
            (0.0, None) if nonneg else (None, None) for nonneg in self._nonneg
        ]
        result = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        if result.status not in (0, 2, 3):
            # Solver hiccup (e.g. HiGHS status 4 on badly scaled inputs):
            # retry without presolve before giving up.
            result = linprog(
                c,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
                options={"presolve": False},
            )
        return result.status, result.x, result.fun, result.message

    def solve(self, backend: Optional[str] = None) -> LPSolution:
        """Solve on a registered backend; raises on infeasible/unbounded.

        ``backend`` names a :mod:`repro.core.solvers` backend; ``None``
        defers to the thread-local :func:`~repro.core.solvers.use_solver`
        context (armed by the engine/Analyzer), then the environment
        default.  All built-in backends return bitwise-identical optima
        for this pipeline's LPs.
        """
        n = len(self._index)
        if n == 0:
            raise SynthesisError("linear program has no unknowns")

        _SOLVE_COUNT[0] += 1
        chosen = resolve_backend(backend if backend is not None else active_solver())
        outcome = chosen.solve(self)
        status, x, fun, message = outcome.status, outcome.x, outcome.fun, outcome.message
        offset = self._objective.const if self._objective is not None else 0.0

        if status == 2:
            raise InfeasibleError(
                "no Handelman certificate of the requested degree exists; "
                "try a higher template degree, a larger multiplicand cap, "
                "or stronger invariants"
            )
        if status == 3:
            raise UnboundedError("LP objective is unbounded; the invariant is too weak to pin a bound")
        if status != 0:
            raise SynthesisError(f"LP solver failed: {message}")

        values = {name: float(x[idx]) for name, idx in self._index.items()}
        objective = float(fun) * (-1.0 if self._maximize else 1.0) + offset
        return LPSolution(
            values=values,
            objective=objective,
            num_variables=n,
            num_equalities=len(self._rows),
        )


# ---------------------------------------------------------------------------
# Built-in backends
# ---------------------------------------------------------------------------


class HighsDirectBackend:
    """``highs``: direct calls into SciPy's bundled HiGHS bindings.

    Degrades to the ``linprog`` path for row-free programs and on
    private-API drift, so the outcome is always defined; the optima are
    bitwise-identical either way.
    """

    id = "highs"

    def available(self) -> bool:
        return _highs_core is not None

    def solve(self, lp: LinearProgram) -> SolveOutcome:
        c, _offset, data, indices, indptr, b_eq = lp._assemble()
        if _highs_core is not None and lp._rows:
            try:
                direct = lp._solve_highs_direct(c, data, indices, indptr, b_eq)
            except Exception:  # private-API drift: fall back to linprog
                direct = None
            if direct is not None:
                status, x, fun = direct
                return SolveOutcome(status=status, x=x, fun=fun, message=f"HiGHS status {status}")
        status, x, fun, message = lp._solve_linprog(c, data, indices, indptr, b_eq)
        return SolveOutcome(status=status, x=x, fun=fun, message=message)


class LinprogBackend:
    """``linprog``: the portable public-SciPy path."""

    id = "linprog"

    def available(self) -> bool:
        return True

    def solve(self, lp: LinearProgram) -> SolveOutcome:
        c, _offset, data, indices, indptr, b_eq = lp._assemble()
        status, x, fun, message = lp._solve_linprog(c, data, indices, indptr, b_eq)
        return SolveOutcome(status=status, x=x, fun=fun, message=message)


#: replace=True keeps importlib.reload() of this module idempotent.
register_backend(HighsDirectBackend(), replace=True)
register_backend(LinprogBackend(), replace=True)
