"""Soundness side conditions (Sections 5 and 6).

The soundness theorems come with applicability envelopes:

* **Theorem 6.10 / 6.12** (general signed costs): the program must have
  the *bounded update* property (Definition 6.9) and the concentration
  property; the latter is certified separately by
  :mod:`repro.termination`.
* **Theorem 6.14** (general updates): every stepwise cost must be
  nonnegative and the PUCS itself nonnegative.

This module implements decidable sufficient checks for those conditions
and a :func:`classify` helper that picks the strongest applicable
analysis mode, mirroring how the paper's experiments choose between the
Section 6.2 and Section 6.3 regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import InfeasibleError, UnboundedError
from ..invariants import InvariantMap
from ..polynomials import LinForm, Polynomial
from ..semantics.cfg import CFG, AssignLabel
from .handelman import certificate_equalities
from .lp import LinearProgram

__all__ = [
    "ConditionReport",
    "check_bounded_updates",
    "check_bounded_costs",
    "check_nonnegative_costs",
    "classify",
    "AnalysisMode",
]


@dataclass
class ConditionReport:
    """Outcome of one side-condition check."""

    holds: bool
    detail: str
    offending_labels: List[int] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def _interval_bounds_from_polyhedron(polyhedron) -> dict:
    """Extract per-variable interval bounds from single-variable linear
    constraints of a polyhedron (``a*x + b >= 0``)."""
    from ..polynomials import Monomial

    bounds: dict = {}
    for g in polyhedron:
        if not g.is_linear():
            continue
        variables = g.variables()
        if len(variables) != 1:
            continue
        (var,) = variables
        a = float(g.coeff(Monomial.variable(var)))
        b = float(g.constant_term())
        if a == 0.0:
            continue
        lo, hi = bounds.get(var, (float("-inf"), float("inf")))
        if a > 0:  # x >= -b/a
            lo = max(lo, -b / a)
        else:  # x <= -b/-(-a) = b/(-a)
            hi = min(hi, -b / a)
        bounds[var] = (lo, hi)
    return bounds


def _interval_bounds_from_region(region) -> dict:
    """Per-variable bounds valid on a union of polyhedra (the join of
    the per-disjunct bounds)."""
    joined: dict = {}
    for index, polyhedron in enumerate(region):
        bounds = _interval_bounds_from_polyhedron(polyhedron)
        if index == 0:
            joined = bounds
            continue
        merged = {}
        for var in set(joined) & set(bounds):
            lo1, hi1 = joined[var]
            lo2, hi2 = bounds[var]
            merged[var] = (min(lo1, lo2), max(hi1, hi2))
        joined = merged
    return joined


def _delta_is_bounded(cfg: CFG, label: AssignLabel, invariants: Optional[InvariantMap]) -> bool:
    """Is ``|e - x|`` bounded by a constant on the label's invariant?"""
    import math

    delta = label.expr - Polynomial.variable(label.var)
    var_bounds = (
        _interval_bounds_from_region(invariants.get(label.id)) if invariants is not None else {}
    )
    total_lo, total_hi = 0.0, 0.0
    for mono, coeff in delta.terms():
        term_lo, term_hi = 1.0, 1.0
        for var, exp in mono:
            dist = cfg.rvars.get(var)
            if dist is not None:
                lo, hi = dist.support_bounds()
            else:
                lo, hi = var_bounds.get(var, (float("-inf"), float("inf")))
            for _ in range(exp):
                candidates = [term_lo * lo, term_lo * hi, term_hi * lo, term_hi * hi]
                candidates = [0.0 if math.isnan(v) else v for v in candidates]
                term_lo, term_hi = min(candidates), max(candidates)
        c = float(coeff)
        lo_c, hi_c = (c * term_lo, c * term_hi) if c >= 0 else (c * term_hi, c * term_lo)
        total_lo += lo_c
        total_hi += hi_c
    return math.isfinite(total_lo) and math.isfinite(total_hi)


def check_bounded_updates(cfg: CFG, invariants: Optional[InvariantMap] = None) -> ConditionReport:
    """Sufficient check for Definition 6.9 (bounded update).

    An assignment ``x := e`` has bounded update when ``|e - x|`` is
    bounded by a constant over the label's invariant.  The check
    evaluates ``e - x`` in interval arithmetic, using distribution
    support bounds for sampling variables and (when ``invariants`` is
    supplied) interval constraints for program variables.  Shift-style
    updates (``x := x + r``) always pass; copies like ``n := n - x + r``
    pass when the invariant bounds ``x``; scalings (``a := 1.1 * a``)
    over unbounded ranges are rejected — they genuinely violate bounded
    update.
    """
    offending: List[int] = []
    details: List[str] = []
    for label in cfg:
        if not isinstance(label, AssignLabel):
            continue
        if not _delta_is_bounded(cfg, label, invariants):
            offending.append(label.id)
            details.append(f"label {label.id} ({label.describe()}): unbounded state change")
    if offending:
        return ConditionReport(False, "; ".join(details), offending)
    return ConditionReport(True, "all assignments have bounded updates")


def check_bounded_costs(cfg: CFG) -> ConditionReport:
    """All tick costs are constants (the setting of [74])."""
    offending = [l.id for l in cfg.tick_labels() if not l.cost.is_constant()]
    if offending:
        return ConditionReport(False, f"variable-dependent costs at labels {offending}", offending)
    return ConditionReport(True, "all tick costs are constants")


def _is_nonnegative_on(poly: Polynomial, gammas: List[Polynomial], max_multiplicands: int) -> bool:
    """Certify ``poly >= 0`` on ``<Gamma>`` via a Handelman feasibility LP."""
    lp = LinearProgram()
    equalities, multipliers = certificate_equalities(poly, gammas, max_multiplicands, "nncheck")
    for name in multipliers:
        lp.add_unknown(name, nonnegative=True)
    try:
        for coeffs, rhs in equalities:
            lp.add_equality(coeffs, rhs)
        lp.set_objective(LinForm(0.0))
        lp.solve()
        return True
    except (InfeasibleError, UnboundedError):
        return False


def check_nonnegative_costs(
    cfg: CFG, invariants: Optional[InvariantMap] = None, max_multiplicands: Optional[int] = None
) -> ConditionReport:
    """Every tick cost is nonnegative on its label's invariant.

    Constant costs are decided directly; variable-dependent costs are
    certified by a small Handelman feasibility LP over the invariant at
    the tick label.  The check is sound (never accepts a cost that can
    be negative within the invariant) but incomplete.
    """
    invariants = invariants or InvariantMap.trivial()
    offending: List[int] = []
    for label in cfg.tick_labels():
        if label.cost.is_constant():
            if float(label.cost.constant_term()) < 0.0:
                offending.append(label.id)
            continue
        cap = max_multiplicands if max_multiplicands is not None else max(label.cost.degree(), 1)
        if not all(
            _is_nonnegative_on(label.cost, polyhedron.constraints, cap)
            for polyhedron in invariants.get(label.id)
        ):
            offending.append(label.id)
    if offending:
        return ConditionReport(
            False, f"possibly negative costs at labels {offending}", offending
        )
    return ConditionReport(True, "all tick costs certified nonnegative")


@dataclass
class AnalysisMode:
    """Which soundness regime applies, and therefore which bounds exist.

    * ``signed-bounded-update`` (Section 6.2): upper *and* lower bounds;
      requires concentration (certify via :mod:`repro.termination`).
    * ``nonnegative-general-update`` (Section 6.3): upper bounds only,
      with a nonnegative PUCS; no OST needed.
    * ``unsupported``: both negative costs and unbounded updates — the
      open case the paper leaves as future work (Section 10).
    """

    name: str
    upper: bool
    lower: bool
    require_nonnegative_template: bool
    reports: dict = field(default_factory=dict)


def classify(cfg: CFG, invariants: Optional[InvariantMap] = None) -> AnalysisMode:
    """Pick the strongest applicable soundness regime for ``cfg``."""
    bounded_updates = check_bounded_updates(cfg, invariants)
    nonneg_costs = check_nonnegative_costs(cfg, invariants)
    reports = {
        "bounded_updates": bounded_updates,
        "nonnegative_costs": nonneg_costs,
        "bounded_costs": check_bounded_costs(cfg),
    }
    if bounded_updates:
        return AnalysisMode(
            name="signed-bounded-update",
            upper=True,
            lower=True,
            require_nonnegative_template=False,
            reports=reports,
        )
    if nonneg_costs:
        return AnalysisMode(
            name="nonnegative-general-update",
            upper=True,
            lower=False,
            require_nonnegative_template=True,
            reports=reports,
        )
    return AnalysisMode(
        name="unsupported",
        upper=False,
        lower=False,
        require_nonnegative_template=False,
        reports=reports,
    )
