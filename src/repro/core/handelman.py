"""Handelman certificates (Theorem 7.1; Section 7, step (3)).

Handelman's theorem: if ``g > 0`` on the compact polyhedron
``<Gamma> = {x | gamma(x) >= 0 for gamma in Gamma}`` (``Gamma`` a set of
linear forms), then ``g = sum_k c_k f_k`` with ``c_k > 0`` and each
``f_k`` a finite product of elements of ``Gamma``.

The synthesis algorithm uses the theorem in the *sufficient* direction:
writing a target polynomial in the form ``sum c_k f_k`` with ``c_k >= 0``
certifies ``g >= 0`` on ``<Gamma>`` regardless of compactness.  Fixing a
cap ``K`` on the number of multiplicands makes the certificate space
finite; matching monomial coefficients of

    g - sum_k c_k f_k = 0

yields linear equalities over the template unknowns ``a_ij`` and the
fresh multipliers ``c_k``, which is exactly what the LP solves.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import NonLinearError
from ..polynomials import LinForm, Monomial, Polynomial

__all__ = ["monoid_products", "certificate_equalities", "LinearEquality"]

#: One linear equality ``sum(coeffs[u] * u) = rhs`` over LP unknowns.
LinearEquality = Tuple[Dict[str, float], float]


def monoid_products(gammas: Sequence[Polynomial], max_multiplicands: int) -> List[Polynomial]:
    """All products of at most ``max_multiplicands`` elements of ``Gamma``.

    The empty product (the constant polynomial 1) is always included —
    it is the ``t = 0`` case of the paper's ``Monoid(Gamma)`` and lets
    certificates carry a nonnegative constant slack.  Duplicate products
    (e.g. from repeated constraints) are removed.
    """
    if max_multiplicands < 0:
        raise ValueError("max_multiplicands must be nonnegative")
    for g in gammas:
        if not g.is_numeric():
            raise NonLinearError("Handelman constraints must be numeric")
        if not g.is_linear():
            raise NonLinearError(f"Handelman constraints must be linear, got {g}")

    products: List[Polynomial] = [Polynomial.constant(1.0)]
    seen = {products[0]}
    for count in range(1, max_multiplicands + 1):
        for combo in combinations_with_replacement(range(len(gammas)), count):
            prod = Polynomial.constant(1.0)
            for idx in combo:
                prod = prod * gammas[idx]
            if prod not in seen:
                seen.add(prod)
                products.append(prod)
    return products


class _MultiplierNames:
    """Fresh, readable names for certificate multipliers."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.count = 0

    def fresh(self) -> str:
        name = f"{self.prefix}_{self.count}"
        self.count += 1
        return name


def certificate_equalities(
    target: Polynomial,
    gammas: Sequence[Polynomial],
    max_multiplicands: int,
    site_name: str,
) -> Tuple[List[LinearEquality], List[str]]:
    """Encode ``target = sum_k c_k f_k`` as linear equalities.

    ``target`` is a polynomial whose coefficients are affine in the
    template unknowns.  Returns the equality rows (one per monomial of
    the combined polynomial) plus the names of the fresh nonnegative
    multipliers ``c_k``; the caller registers those with the LP.

    ``site_name`` keys the multiplier names so that constraint sites
    stay distinguishable in LP dumps (useful when debugging
    infeasibility).
    """
    names = _MultiplierNames(f"c_{site_name}")
    multipliers: List[str] = []
    residual = target
    for product in monoid_products(gammas, max_multiplicands):
        c_name = names.fresh()
        multipliers.append(c_name)
        residual = residual - product * LinForm.unknown(c_name)

    equalities: List[LinearEquality] = []
    for _mono, coeff in residual.terms():
        form = coeff if isinstance(coeff, LinForm) else LinForm(float(coeff))
        equalities.append((dict(form.terms), -form.const))
    return equalities, multipliers
