"""Handelman certificates (Theorem 7.1; Section 7, step (3)).

Handelman's theorem: if ``g > 0`` on the compact polyhedron
``<Gamma> = {x | gamma(x) >= 0 for gamma in Gamma}`` (``Gamma`` a set of
linear forms), then ``g = sum_k c_k f_k`` with ``c_k > 0`` and each
``f_k`` a finite product of elements of ``Gamma``.

The synthesis algorithm uses the theorem in the *sufficient* direction:
writing a target polynomial in the form ``sum c_k f_k`` with ``c_k >= 0``
certifies ``g >= 0`` on ``<Gamma>`` regardless of compactness.  Fixing a
cap ``K`` on the number of multiplicands makes the certificate space
finite; matching monomial coefficients of

    g - sum_k c_k f_k = 0

yields linear equalities over the template unknowns ``a_ij`` and the
fresh multipliers ``c_k``, which is exactly what the LP solves.

Performance notes
-----------------
``monoid_products`` is built *incrementally*: the degree-``k`` frontier
extends the cached degree-``k-1`` products by one factor instead of
re-multiplying every combination from the constant polynomial, and the
result is memoised per ``(Gamma, cap)`` — constraint sites repeat the
same invariant polyhedra many times within one synthesis run (and again
across the PUCS/PLCS runs of a single analysis).

``certificate_equalities`` never touches polynomial arithmetic: the
equality rows are accumulated directly into per-monomial coefficient
tables (one dict per row), instead of repeatedly rebuilding the
``O(terms)`` residual polynomial per multiplier.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import NonLinearError
from ..polynomials import LinForm, Monomial, Polynomial

__all__ = ["monoid_products", "certificate_equalities", "clear_monoid_cache", "LinearEquality"]

#: One linear equality ``sum(coeffs[u] * u) = rhs`` over LP unknowns.
LinearEquality = Tuple[Dict[str, float], float]

#: ``(per-gamma canonical keys, cap) -> tuple of products``; bounded so a
#: long-lived process sweeping many programs cannot grow it unboundedly.
_MONOID_CACHE: Dict[tuple, Tuple[Polynomial, ...]] = {}
_MONOID_CACHE_MAX = 4096


def clear_monoid_cache() -> None:
    """Drop the memoised monoid products (tests and benchmarks)."""
    _MONOID_CACHE.clear()


def _gamma_key(g: Polynomial) -> tuple:
    """Canonical hashable key of a numeric linear constraint."""
    return tuple(sorted((m.powers, float(c)) for m, c in g.terms()))


def monoid_products(gammas: Sequence[Polynomial], max_multiplicands: int) -> List[Polynomial]:
    """All products of at most ``max_multiplicands`` elements of ``Gamma``.

    The empty product (the constant polynomial 1) is always included —
    it is the ``t = 0`` case of the paper's ``Monoid(Gamma)`` and lets
    certificates carry a nonnegative constant slack.  Duplicate products
    (e.g. from repeated constraints) are removed.
    """
    if max_multiplicands < 0:
        raise ValueError("max_multiplicands must be nonnegative")
    for g in gammas:
        if not g.is_numeric():
            raise NonLinearError("Handelman constraints must be numeric")
        if not g.is_linear():
            raise NonLinearError(f"Handelman constraints must be linear, got {g}")

    cache_key = (tuple(_gamma_key(g) for g in gammas), int(max_multiplicands))
    cached = _MONOID_CACHE.get(cache_key)
    if cached is not None:
        return list(cached)

    one = Polynomial.constant(1.0)
    products: List[Polynomial] = [one]
    seen = {one}
    # Frontier of degree-(k-1) combinations as (product, next admissible
    # gamma index): extending with indices >= the last one used walks
    # exactly the combinations-with-replacement of the naive version.
    frontier: List[Tuple[Polynomial, int]] = [(one, 0)]
    for _count in range(1, max_multiplicands + 1):
        next_frontier: List[Tuple[Polynomial, int]] = []
        for prod, start in frontier:
            for idx in range(start, len(gammas)):
                extended = prod * gammas[idx]
                next_frontier.append((extended, idx))
                if extended not in seen:
                    seen.add(extended)
                    products.append(extended)
        frontier = next_frontier

    if len(_MONOID_CACHE) >= _MONOID_CACHE_MAX:
        _MONOID_CACHE.clear()
    _MONOID_CACHE[cache_key] = tuple(products)
    return list(products)


def certificate_equalities(
    target: Polynomial,
    gammas: Sequence[Polynomial],
    max_multiplicands: int,
    site_name: str,
) -> Tuple[List[LinearEquality], List[str]]:
    """Encode ``target = sum_k c_k f_k`` as linear equalities.

    ``target`` is a polynomial whose coefficients are affine in the
    template unknowns.  Returns the equality rows (one per monomial of
    the combined polynomial) plus the names of the fresh nonnegative
    multipliers ``c_k``; the caller registers those with the LP.

    ``site_name`` keys the multiplier names so that constraint sites
    stay distinguishable in LP dumps (useful when debugging
    infeasibility).
    """
    products = monoid_products(gammas, max_multiplicands)
    prefix = f"c_{site_name}"
    multipliers = [f"{prefix}_{k}" for k in range(len(products))]

    # One row per monomial of target - sum_k c_k f_k; accumulate the
    # unknowns' coefficients directly instead of building the residual
    # polynomial multiplier by multiplier.
    rows: Dict[Monomial, Dict[str, float]] = {}
    rhs: Dict[Monomial, float] = {}
    for mono, coeff in target.terms():
        if isinstance(coeff, LinForm):
            rows[mono] = dict(coeff.terms)
            rhs[mono] = -coeff.const
        else:
            rows[mono] = {}
            rhs[mono] = -float(coeff)
    for c_name, product in zip(multipliers, products):
        for mono, pcoeff in product.terms():
            row = rows.get(mono)
            if row is None:
                rows[mono] = {c_name: -float(pcoeff)}
                rhs[mono] = 0.0
            else:
                row[c_name] = row.get(c_name, 0.0) - float(pcoeff)

    equalities: List[LinearEquality] = [(row, rhs[mono]) for mono, row in rows.items()]
    return equalities, multipliers
