"""Polynomial templates (Section 7, step (1)).

For every non-terminal label ``l_i`` the synthesizer posits

    h(l_i) = sum_j a_ij * m_j

over the monomial basis ``m_j`` of degree at most ``d`` in the program
variables; the ``a_ij`` are fresh LP unknowns.  Condition (C2) pins
``h(l_out) = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..polynomials import LinForm, Monomial, Polynomial, monomials_up_to_degree
from ..semantics.cfg import CFG, TerminalLabel

__all__ = ["Template", "make_template"]


@dataclass
class Template:
    """A symbolic candidate ``h``: one polynomial per label."""

    degree: int
    polys: Dict[int, Polynomial]
    unknowns: List[str] = field(default_factory=list)
    basis: List[Monomial] = field(default_factory=list)

    def at(self, label_id: int) -> Polynomial:
        return self.polys[label_id]

    def instantiate(self, assignment: Dict[str, float]) -> Dict[int, Polynomial]:
        """Plug in solved LP values, yielding numeric per-label polynomials."""
        full = {name: assignment.get(name, 0.0) for name in self.unknowns}
        return {label_id: poly.instantiate(full) for label_id, poly in self.polys.items()}


def make_template(cfg: CFG, degree: int, variables: Optional[Sequence[str]] = None) -> Template:
    """Create a degree-``degree`` template over ``variables``.

    ``variables`` defaults to the program variables of the CFG.  Unknowns
    are named ``a_<label>_<j>`` where ``j`` indexes the monomial basis in
    graded-lexicographic order, which makes LP solutions easy to read
    when debugging.
    """
    if degree < 0:
        raise ValueError("template degree must be nonnegative")
    names = list(variables) if variables is not None else list(cfg.pvars)
    basis = monomials_up_to_degree(names, degree)

    polys: Dict[int, Polynomial] = {}
    unknowns: List[str] = []
    for label in cfg:
        if isinstance(label, TerminalLabel):
            polys[label.id] = Polynomial.zero()
            continue
        terms = {}
        for j, mono in enumerate(basis):
            name = f"a_{label.id}_{j}"
            unknowns.append(name)
            terms[mono] = LinForm.unknown(name)
        # Keys come straight from the monomial basis and every
        # coefficient is a fresh unknown — safe to skip validation.
        polys[label.id] = Polynomial._raw(terms)
    return Template(degree=degree, polys=polys, unknowns=unknowns, basis=basis)
