"""Pluggable LP solver backends (the ``solver`` knob of ``repro.api``).

Section 7's synthesis step reduces everything to "solve this small LP";
*which* solver runs it used to be hardcoded inside
:class:`~repro.core.lp.LinearProgram`.  This module turns that choice
into a first-class, registrable backend:

* :class:`SolverBackend` is the protocol a backend implements — an
  ``id``, an availability probe, and ``solve(lp)`` returning a
  :class:`SolveOutcome` with ``linprog``-compatible status codes;
* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` manage the process-wide registry (unknown
  names get a did-you-mean suggestion, like the benchmark registry);
* :func:`resolve_backend` maps a requested name (or ``None``/"auto")
  to a usable backend — the *resolved id* is what the result cache
  folds into its request fingerprint, so bounds produced by one
  backend are never served to a session configured for another;
* :func:`use_solver` is the thread-local context the batch engine and
  :class:`repro.api.Analyzer` arm around a task so every LP inside the
  pipeline (synthesis, baseline, RSM) runs on the session's backend
  without threading a parameter through every call.

The built-in backends (``highs`` — SciPy's bundled HiGHS bindings
called directly — and ``linprog`` — the public ``scipy.optimize``
wrapper) live in :mod:`repro.core.lp` and register themselves on
import.  Both produce bitwise-identical optima for this pipeline's
LPs; they differ in setup overhead and in how far they reach into
SciPy private APIs.
"""

from __future__ import annotations

import difflib
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Protocol, runtime_checkable

__all__ = [
    "SolveOutcome",
    "SolverBackend",
    "active_solver",
    "available_backends",
    "backend_specs",
    "default_backend_id",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolved_solver_id",
    "use_solver",
]

#: Name accepted everywhere that means "pick the default backend".
AUTO = "auto"


@dataclass(frozen=True)
class SolveOutcome:
    """A backend's verdict, in ``scipy.optimize.linprog`` status codes.

    ``status`` 0 = optimal (``x``/``fun`` set), 2 = infeasible,
    3 = unbounded; anything else is a solver failure described by
    ``message``.
    """

    status: int
    x: Optional[Any] = None
    fun: Optional[float] = None
    message: str = ""


@runtime_checkable
class SolverBackend(Protocol):
    """What a pluggable LP solver must provide.

    Implementations are stateless from the caller's point of view
    (per-thread solver objects and similar caches are internal) and
    must be safe to share across threads.
    """

    #: Stable registry name; folded into cache fingerprints.
    id: str

    def available(self) -> bool:
        """Can this backend run in the current environment?"""
        ...

    def solve(self, lp) -> SolveOutcome:
        """Solve an assembled :class:`~repro.core.lp.LinearProgram`."""
        ...


_REGISTRY: Dict[str, SolverBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def _ensure_builtins() -> None:
    """Importing :mod:`repro.core.lp` registers the built-in backends."""
    from . import lp  # noqa: F401  (import side effect)


def register_backend(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Add ``backend`` to the registry (``backend.id`` is the key).

    Re-registering an existing id raises unless ``replace=True`` —
    silently shadowing the backend someone else's session resolved
    would poison cache fingerprints.
    """
    backend_id = getattr(backend, "id", None)
    if not backend_id or not isinstance(backend_id, str):
        raise ValueError("solver backend must have a non-empty string 'id'")
    if backend_id == AUTO:
        raise ValueError(f"{AUTO!r} is reserved for default-backend resolution")
    with _REGISTRY_LOCK:
        if backend_id in _REGISTRY and not replace:
            raise ValueError(
                f"solver backend {backend_id!r} is already registered (pass replace=True)"
            )
        _REGISTRY[backend_id] = backend
    return backend


def unregister_backend(backend_id: str) -> None:
    """Remove a backend (primarily for tests)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(backend_id, None)


def get_backend(name: str) -> SolverBackend:
    """The registered backend called ``name``.

    Unknown names raise ``KeyError`` with a nearest-name suggestion,
    mirroring ``repro.programs.get_benchmark``.
    """
    _ensure_builtins()
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
        known = sorted(_REGISTRY)
    if backend is not None:
        return backend
    suggestion = difflib.get_close_matches(name, known + [AUTO], n=1)
    hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
    raise KeyError(f"unknown solver backend {name!r}{hint} known backends: {known}")


def available_backends() -> List[str]:
    """Sorted ids of every registered backend (available or not)."""
    _ensure_builtins()
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def default_backend_id() -> str:
    """The backend ``"auto"`` resolves to: ``highs`` when SciPy's
    direct bindings are importable, else ``linprog``."""
    _ensure_builtins()
    for candidate in ("highs", "linprog"):
        with _REGISTRY_LOCK:
            backend = _REGISTRY.get(candidate)
        if backend is not None and backend.available():
            return candidate
    # Last resort: any available registered backend (a stripped-down
    # environment with only a third-party backend installed).
    for name in available_backends():
        if get_backend(name).available():
            return name
    raise RuntimeError("no available LP solver backend is registered")


def resolve_backend(name: Optional[str]) -> SolverBackend:
    """Map a requested backend name to a usable backend.

    ``None`` and ``"auto"`` pick :func:`default_backend_id`.  A named
    backend that exists but cannot run here raises ``RuntimeError`` —
    silently substituting another solver would undermine the cache's
    backend-id fingerprinting.
    """
    if name is None or name == AUTO:
        return get_backend(default_backend_id())
    backend = get_backend(name)
    if not backend.available():
        raise RuntimeError(
            f"solver backend {name!r} is registered but not available in this environment"
        )
    return backend


def resolved_solver_id(name: Optional[str]) -> str:
    """The id :func:`resolve_backend` would hand back for ``name``."""
    return resolve_backend(name).id


def backend_specs() -> List[Dict[str, Any]]:
    """Registry census for ``GET /version`` and diagnostics."""
    default = None
    try:
        default = default_backend_id()
    except RuntimeError:  # pragma: no cover - no solver at all
        pass
    return [
        {
            "id": name,
            "available": get_backend(name).available(),
            "default": name == default,
        }
        for name in available_backends()
    ]


# ---------------------------------------------------------------------------
# Active-solver context
# ---------------------------------------------------------------------------

_ACTIVE = threading.local()


def active_solver() -> Optional[str]:
    """The backend name armed by the innermost :func:`use_solver`."""
    return getattr(_ACTIVE, "name", None)


@contextmanager
def use_solver(name: Optional[str]) -> Iterator[None]:
    """Run the enclosed pipeline on backend ``name`` (thread-local).

    ``None`` restores default resolution.  The batch engine arms this
    per task from ``AnalysisRequest.solver``; ``Analyzer`` arms it for
    staged calls — LP construction sites never see the choice.
    """
    previous = getattr(_ACTIVE, "name", None)
    _ACTIVE.name = name
    try:
        yield
    finally:
        _ACTIVE.name = previous
