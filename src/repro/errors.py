"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
pipeline stages: parsing, CFG construction, invariant handling and
bound synthesis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when source text does not conform to the paper's grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SemanticsError(ReproError):
    """Raised for ill-formed programs (e.g. unknown variables)."""


class CFGError(ReproError):
    """Raised when a control-flow graph is inconsistent."""


class InvariantError(ReproError):
    """Raised for ill-formed invariant annotations."""


class DegreeError(ReproError):
    """Raised when an operation would exceed a required degree bound."""


class NonLinearError(ReproError):
    """Raised when a linear expression is required but a higher-degree
    polynomial is supplied (e.g. invariant constraints, LinForm products)."""


class SynthesisError(ReproError):
    """Base class for bound-synthesis failures."""


class InfeasibleError(SynthesisError):
    """The generated linear program has no feasible solution.

    This does *not* mean that no polynomial bound exists: it means no
    bound exists of the requested degree, certified by Handelman
    products of the supplied invariants.  Retrying with a higher
    template degree, a larger multiplicand cap or stronger invariants
    may succeed.
    """


class UnboundedError(SynthesisError):
    """The linear program is unbounded in the chosen objective."""


class UnsupportedProgramError(SynthesisError):
    """The program falls outside the soundness envelope of the chosen
    analysis mode (e.g. negative costs passed to the [74] baseline)."""
