"""Exception hierarchy and shared numeric tolerances.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
pipeline stages: parsing, CFG construction, invariant handling and
bound synthesis.

The tolerance constants live here (rather than next to the polynomial
or LP code) because both ends of the pipeline need the *same* notion of
"zero": a coefficient pruned by polynomial arithmetic must also be
pruned by LP row assembly, or identical constraints stop deduplicating.
"""

from __future__ import annotations

#: Coefficient magnitudes at or below this are treated as exact zeros —
#: used by polynomial term pruning and LP row cleaning alike.
ZERO_TOL = 1e-12

#: Slack for consistency checks on constant equalities (``0 = rhs``):
#: looser than :data:`ZERO_TOL` because the rhs accumulates float error
#: from pre-expectation arithmetic before it reaches the LP.
CONSISTENCY_TOL = 1e-9


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when source text does not conform to the paper's grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SemanticsError(ReproError):
    """Raised for ill-formed programs (e.g. unknown variables)."""


class CFGError(ReproError):
    """Raised when a control-flow graph is inconsistent."""


class VectorizationError(SemanticsError):
    """The vectorized batch interpreter cannot compile this program or
    scheduler (e.g. a history-dependent scheduler).  ``simulate`` in
    ``engine="auto"`` mode catches it and falls back to the reference
    interpreter transparently."""


class InvariantError(ReproError):
    """Raised for ill-formed invariant annotations."""


class CheckError(ReproError):
    """Raised when strict-mode static checks reject a program.

    Carries the error-severity :class:`repro.check.Diagnostic` records
    in ``diagnostics`` so callers can render structured findings.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class DegreeError(ReproError):
    """Raised when an operation would exceed a required degree bound."""


class NonLinearError(ReproError):
    """Raised when a linear expression is required but a higher-degree
    polynomial is supplied (e.g. invariant constraints, LinForm products)."""


class SynthesisError(ReproError):
    """Base class for bound-synthesis failures."""


class InfeasibleError(SynthesisError):
    """The generated linear program has no feasible solution.

    This does *not* mean that no polynomial bound exists: it means no
    bound exists of the requested degree, certified by Handelman
    products of the supplied invariants.  Retrying with a higher
    template degree, a larger multiplicand cap or stronger invariants
    may succeed.
    """


class UnboundedError(SynthesisError):
    """The linear program is unbounded in the chosen objective."""


class UnsupportedProgramError(SynthesisError):
    """The program falls outside the soundness envelope of the chosen
    analysis mode (e.g. negative costs passed to the [74] baseline)."""


class WorkerCrashError(ReproError):
    """A pool worker died (e.g. SIGKILL/segfault) while running a task
    and the task's retry budget is exhausted.  Surfaced on batch
    reports as ``status="crashed"`` rather than raised, so one bad
    task never takes down its siblings."""


class InjectedFaultError(ReproError):
    """Raised by the :mod:`repro.resilience.faults` test hook when a
    ``fail`` rule matches a task attempt.  Only ever seen with the
    ``REPRO_FAULTS`` environment hook active; reported as a normal
    ``status="error"`` result."""
