"""repro — expected-cost analysis of nondeterministic probabilistic programs.

A from-scratch Python reproduction of

    Peixin Wang, Hongfei Fu, Amir Kafshdar Goharshady, Krishnendu
    Chatterjee, Xudong Qin, Wenjun Shi.
    "Cost Analysis of Nondeterministic Probabilistic Programs."
    PLDI 2019.

The library synthesizes polynomial upper bounds (PUCS) and lower bounds
(PLCS) on the maximal expected accumulated ``tick`` cost of imperative
programs with probabilistic sampling and demonic nondeterminism, via
Handelman certificates reduced to linear programming.

Quickstart::

    import repro

    result = repro.analyze('''
        var x;
        while x >= 1 do
            x := x + (1, -1) : (0.25, 0.75);
            tick(1)
        od
    ''', init={"x": 100}, invariants={1: "x >= 0"})
    print(result.summary())
"""

from .analysis import (
    CostAnalysisResult,
    MartingaleReport,
    TailBound,
    analyze,
    analyze_runtime,
    check_cost_martingale,
    derive_tail_bound,
    instrument_runtime,
)
from .baseline import baseline_applicable, baseline_upper_bound
from .cache import ResultCache
from .core import (
    BoundResult,
    classify,
    pre_expectation_cases,
    pre_expectation_value,
    synthesize,
    synthesize_plcs,
    synthesize_pucs,
)
from .errors import (
    CFGError,
    DegreeError,
    InfeasibleError,
    InvariantError,
    NonLinearError,
    ParseError,
    ReproError,
    SemanticsError,
    SynthesisError,
    UnboundedError,
    UnsupportedProgramError,
)
from .invariants import (
    InvariantMap,
    Polyhedron,
    generate_interval_invariants,
    generate_invariants,
    generate_octagon_invariants,
)
from .polynomials import LinForm, Monomial, Polynomial, expectation
from .semantics import (
    CFG,
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    Distribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
    build_cfg,
    run,
    simulate,
)
from .syntax import Program, parse_condition, parse_expression, parse_program, replace_nondet
from .termination import RankingCertificate, certify_concentration, synthesize_rsm

__version__ = "1.6.0"

# The typed front door; imported last — it composes the layers above.
from .api import AnalysisOptions, AnalysisReport, AnalysisRequest, Analyzer  # noqa: E402

__all__ = [
    "AnalysisOptions",
    "AnalysisReport",
    "AnalysisRequest",
    "Analyzer",
    "BernoulliDistribution",
    "BinomialDistribution",
    "BoundResult",
    "CFG",
    "CFGError",
    "CostAnalysisResult",
    "DegreeError",
    "DiscreteDistribution",
    "Distribution",
    "InfeasibleError",
    "InvariantError",
    "InvariantMap",
    "LinForm",
    "MartingaleReport",
    "Monomial",
    "NonLinearError",
    "ParseError",
    "PointDistribution",
    "Polyhedron",
    "Polynomial",
    "Program",
    "RankingCertificate",
    "ReproError",
    "ResultCache",
    "SemanticsError",
    "SynthesisError",
    "TailBound",
    "UnboundedError",
    "UniformDistribution",
    "UniformIntDistribution",
    "UnsupportedProgramError",
    "analyze",
    "analyze_runtime",
    "baseline_applicable",
    "baseline_upper_bound",
    "build_cfg",
    "certify_concentration",
    "check_cost_martingale",
    "derive_tail_bound",
    "instrument_runtime",
    "classify",
    "expectation",
    "generate_interval_invariants",
    "generate_invariants",
    "generate_octagon_invariants",
    "parse_condition",
    "parse_expression",
    "parse_program",
    "pre_expectation_cases",
    "pre_expectation_value",
    "replace_nondet",
    "run",
    "simulate",
    "synthesize",
    "synthesize_plcs",
    "synthesize_pucs",
    "synthesize_rsm",
]
