"""Content-addressed result cache for analysis reports.

The paper's pipeline (invariants -> Handelman certificates -> LP
bounds) is deterministic per (program, initial valuation, degree plan,
mode, multiplicand cap, solver version), so any two requests with the
same *semantic* content must produce the same :class:`AnalysisReport`.
This module exploits that: every request is reduced to a canonical
fingerprint, hashed (SHA-256), and the finished report is stored under
that hash — batch re-runs, table drivers and the ``repro serve`` HTTP
service all short-circuit to a lookup.

Key derivation
--------------
:func:`request_fingerprint` resolves a request exactly the way the
batch engine would (registry benchmark lookup, the Table 5
``nondet_prob`` transformation, init-dependent invariants, the degree
escalation plan) and then serializes the *parsed program AST* — not the
raw source text — so whitespace, comments and formatting never split
the cache.  Floats are serialized with full ``repr`` precision; the
pretty-printer's ``%g`` display formatting is deliberately not part of
the key.  Request fields that only affect presentation or scheduling
(``name``, ``tag``, ``timeout_s``, ``retry``) are excluded; a cache hit
re-echoes the presentation ones from the incoming request.

Every fingerprint embeds :func:`cache_salt` — the entry-schema version,
the ``repro`` version and the SciPy version — so a code or solver
upgrade silently invalidates stale entries instead of serving bounds a
different implementation computed.  The *resolved LP solver backend
id* (``repro.core.solvers``) is part of the fingerprint itself: a
``linprog``-produced bound is never served to a session configured for
``highs`` and vice versa, even though both live in the same store.

Storage
-------
One JSON file per entry (``<sha256>.json``) under the cache root,
written atomically (``mkstemp`` + ``os.replace``) so concurrent batch
workers on the same store never observe torn entries.  An in-process
LRU front (bounded, thread-safe) keeps hot entries out of the
filesystem entirely.  Only ``status == "ok"`` reports are cached:
errors and timeouts are environment-dependent and must re-execute.

``repro cache stats`` / ``repro cache clear`` expose the store on the
command line; the default root is ``$REPRO_CACHE_DIR``, falling back
to ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .semantics.distributions import (
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    Distribution,
    GeometricDistribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)
from .syntax.ast import (
    And,
    Assign,
    Atom,
    BoolConst,
    BoolExpr,
    If,
    NondetIf,
    Not,
    Or,
    ProbIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "cache_salt",
    "canonical_program",
    "default_cache_dir",
    "request_fingerprint",
    "request_key",
]

#: On-disk entry schema; bumping it invalidates every existing entry.
#: v7: reports are ``repro-report/v6`` shaped (``invariant_domain``) and
#: fingerprints carry the invariant domain — octagon-generated Gamma
#: rows change the LP, so octagon bounds must never alias interval ones.
#: v6: fingerprints carry the simulation engine — ``auto``/``vectorized``
#: draw a different RNG stream than ``reference`` for the same seed, so
#: their sim statistics must never alias.
#: v5: reports are ``repro-report/v5`` shaped (``diagnostics``) and
#: fingerprints carry the ``check`` mode — a warn-mode report embeds
#: lint findings, so it must never alias a check-off entry.
#: v4: reports are ``repro-report/v4`` shaped (``attempts``) — cached
#: entries always carry ``attempts=1``; crash-retry accounting belongs
#: to the run that solved, never to later hits.
#: v3: reports are ``repro-report/v3`` shaped (tail bounds) and
#: fingerprints carry the tail-analysis settings.
#: v2: reports are ``repro-report/v2`` shaped and fingerprints carry
#: the resolved solver backend id + invariant policy.
ENTRY_SCHEMA = "repro-cache/v7"


def cache_salt() -> str:
    """Code + solver version salt baked into every key and entry.

    Any component change means previously cached bounds may no longer
    be reproducible, so entries written under a different salt are
    treated as misses (and garbage-collected on read).
    """
    from . import __version__

    try:
        import scipy

        solver = f"scipy-{scipy.__version__}"
    except ImportError:  # pragma: no cover - scipy is a hard dep in practice
        solver = "no-solver"
    return f"{ENTRY_SCHEMA}|repro={__version__}|{solver}"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro`` (~/.cache)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


# ---------------------------------------------------------------------------
# Canonical program serialization
# ---------------------------------------------------------------------------
#
# The key must be (a) formatting-insensitive — two sources that parse to
# the same AST share an entry — and (b) exact: the pretty-printer's %g
# float formatting would collapse distinct probabilities, so the AST is
# serialized directly with repr-precision floats (json round-trips
# Python floats exactly).  Declaration order is preserved: variable
# order feeds the template/LP column order, and the cache promises
# bitwise-identical bounds, not just mathematically equal ones.


def _canonical_poly(poly) -> List[Any]:
    return [
        [[list(pair) for pair in mono.powers], float(poly.coeff(mono))]
        for mono in sorted(poly.monomials())
    ]


def _canonical_cond(cond: BoolExpr) -> List[Any]:
    if isinstance(cond, Atom):
        return ["atom", bool(cond.strict), _canonical_poly(cond.poly)]
    if isinstance(cond, BoolConst):
        return ["const", bool(cond.value)]
    if isinstance(cond, And):
        return ["and", _canonical_cond(cond.left), _canonical_cond(cond.right)]
    if isinstance(cond, Or):
        return ["or", _canonical_cond(cond.left), _canonical_cond(cond.right)]
    if isinstance(cond, Not):
        return ["not", _canonical_cond(cond.operand)]
    raise TypeError(f"unknown condition node {type(cond).__name__}")


def _canonical_stmt(stmt: Stmt) -> List[Any]:
    if isinstance(stmt, Skip):
        return ["skip"]
    if isinstance(stmt, Assign):
        return ["assign", stmt.var, _canonical_poly(stmt.expr)]
    if isinstance(stmt, Tick):
        return ["tick", _canonical_poly(stmt.cost)]
    if isinstance(stmt, Seq):
        return ["seq", [_canonical_stmt(s) for s in stmt.stmts]]
    if isinstance(stmt, If):
        return [
            "if",
            _canonical_cond(stmt.cond),
            _canonical_stmt(stmt.then_branch),
            _canonical_stmt(stmt.else_branch),
        ]
    if isinstance(stmt, ProbIf):
        return [
            "prob-if",
            float(stmt.prob),
            _canonical_stmt(stmt.then_branch),
            _canonical_stmt(stmt.else_branch),
        ]
    if isinstance(stmt, NondetIf):
        return ["nondet-if", _canonical_stmt(stmt.then_branch), _canonical_stmt(stmt.else_branch)]
    if isinstance(stmt, While):
        return ["while", _canonical_cond(stmt.cond), _canonical_stmt(stmt.body)]
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _canonical_dist(dist: Distribution) -> List[Any]:
    # Subclasses of DiscreteDistribution first: their defining
    # parameters are exact where the expanded value table may not be.
    if isinstance(dist, BernoulliDistribution):
        return ["bernoulli", float(dist.p)]
    if isinstance(dist, BinomialDistribution):
        return ["binomial", int(dist.n), float(dist.p)]
    if isinstance(dist, UniformIntDistribution):
        return ["unifint", int(dist.a), int(dist.b)]
    if isinstance(dist, PointDistribution):
        return ["point", float(dist.value)]
    if isinstance(dist, DiscreteDistribution):
        return ["discrete", list(dist.values), list(dist.probs)]
    if isinstance(dist, UniformDistribution):
        return ["uniform", float(dist.a), float(dist.b)]
    if isinstance(dist, GeometricDistribution):
        return ["geometric", float(dist.p)]
    return ["repr", repr(dist)]


def canonical_program(program: Program) -> Dict[str, Any]:
    """JSON-able canonical form of a parsed program (exact floats)."""
    return {
        "pvars": list(program.pvars),
        "rvars": [[name, _canonical_dist(dist)] for name, dist in program.rvars.items()],
        "body": _canonical_stmt(program.body),
    }


#: source text -> serialized canonical program, so repeated requests
#: against the same benchmark pay the parse exactly once per process.
#: Bounded: a long-lived ``repro serve`` fed many distinct inline
#: sources must not grow without limit (registry traffic uses ~25 keys).
#: Guarded by a lock: concurrent service handler threads fingerprint
#: simultaneously, and the len-check / clear / insert sequence is a
#: read-modify-write that must not interleave.
_CANONICAL_PROGRAM_MEMO: Dict[str, str] = {}
_CANONICAL_PROGRAM_MEMO_MAX = 1024
_CANONICAL_PROGRAM_MEMO_LOCK = threading.Lock()


def _canonical_program_text(bench) -> str:
    with _CANONICAL_PROGRAM_MEMO_LOCK:
        text = _CANONICAL_PROGRAM_MEMO.get(bench.source)
    if text is None:
        text = json.dumps(canonical_program(bench.program), sort_keys=True, separators=(",", ":"))
        with _CANONICAL_PROGRAM_MEMO_LOCK:
            if len(_CANONICAL_PROGRAM_MEMO) >= _CANONICAL_PROGRAM_MEMO_MAX:
                _CANONICAL_PROGRAM_MEMO.clear()
            _CANONICAL_PROGRAM_MEMO[bench.source] = text
    return text


# ---------------------------------------------------------------------------
# Request fingerprint
# ---------------------------------------------------------------------------


def request_fingerprint(request) -> Dict[str, Any]:
    """Everything that determines the analysis outcome, canonicalized.

    Mirrors the batch engine's request resolution: the registry
    benchmark (or inline source) after the ``nondet_prob``
    transformation, the effective initial valuation, the resolved
    invariant annotations (including init-dependent ones), the degree
    plan, the soundness mode and the simulation settings.  Raises for
    requests that cannot be resolved (unknown benchmark, parse error) —
    callers treat that as "uncacheable" and fall through to execution,
    which will surface the same failure as a structured report.
    """
    from .batch.engine import _degree_plan, _resolve_benchmark
    from .core.solvers import resolved_solver_id

    request.validate()
    bench = _resolve_benchmark(request)
    init = dict(request.init) if request.init is not None else dict(bench.init)

    invariants = {str(label): cond for label, cond in bench.invariants.items()}
    if bench.init_invariants is not None:
        for label, cond in bench.init_invariants(dict(init)).items():
            key = str(label)
            if key in invariants:
                invariants[key] = f"({invariants[key]}) and ({cond})"
            else:
                invariants[key] = cond

    simulate: Optional[Dict[str, Any]] = None
    if request.simulate_runs is not None:
        simulate = {
            "runs": int(request.simulate_runs),
            "seed": int(request.simulate_seed),
            "max_steps": int(request.simulate_max_steps),
            "nondet": bool(request.simulate_nondet),
            "engine": str(request.simulate_engine),
        }

    tails: Optional[Dict[str, Any]] = None
    if request.tails:
        tails = {
            "horizon": int(request.tail_horizon) if request.tail_horizon is not None else None,
            "probes": [float(t) for t in request.tail_probes]
            if request.tail_probes is not None
            else None,
        }

    return {
        "salt": cache_salt(),
        "program": _canonical_program_text(bench),
        "invariants": invariants,
        "auto_invariants": bool(request.auto_invariants),
        "invariant_domain": request.invariant_domain,
        "init": {var: float(value) for var, value in init.items()},
        "degrees": _degree_plan(request, bench),
        "mode": request.mode if request.mode is not None else bench.mode,
        "compute_lower": bool(request.compute_lower),
        "max_multiplicands": request.max_multiplicands,
        # The *resolved* backend, not the requested name: "auto" and an
        # explicit "highs" must share entries when they run the same
        # solver, while "highs" and "linprog" must never alias.
        "solver": resolved_solver_id(request.solver),
        "simulate": simulate,
        "tails": tails,
        # Lint mode changes report content (warn embeds diagnostics)
        # and, in strict mode, the outcome itself.
        "check": request.check,
    }


def request_key(request) -> str:
    """SHA-256 hex digest of the canonical request fingerprint."""
    payload = json.dumps(request_fingerprint(request), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Point-in-time cache counters (process-local) + disk census."""

    root: str
    hits: int
    misses: int
    stores: int
    entries: int
    size_bytes: int
    memory_entries: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class ResultCache:
    """Disk-backed, content-addressed report store with an LRU front.

    Thread-safe (the HTTP service shares one instance across handler
    threads) and multi-process-safe for writes (atomic replace); batch
    pool workers each hold their own instance over the same root.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_memory_entries: int = 256,
    ):
        self.root = Path(root) if root is not None else Path(default_cache_dir())
        self.max_memory_entries = max(0, int(max_memory_entries))
        #: key -> serialized report JSON.  Strings (not report objects)
        #: so every hit reconstructs a fresh AnalysisReport — callers
        #: can mutate what they get back without corrupting the cache.
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- keys -----------------------------------------------------------

    def request_key(self, request) -> Optional[str]:
        """Key for ``request``, or ``None`` when it cannot be resolved
        (unknown benchmark, unparseable source): such requests bypass
        the cache and fail identically through the engine."""
        try:
            return request_key(request)
        except Exception:
            return None

    # -- lookup / store -------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def lookup(self, key: str):
        """The cached report for ``key``, or ``None`` (counts hit/miss)."""
        from .batch.spec import AnalysisReport

        with self._lock:
            text = self._memory.get(key)
            if text is not None:
                self._memory.move_to_end(key)
        if text is None:
            text = self._read_disk(key)
            if text is not None:
                self._remember(key, text)
        report = None
        if text is not None:
            try:
                report = AnalysisReport.from_dict(json.loads(text))
            except ValueError:
                # Valid JSON that is not a readable report (hand-mangled
                # entry, or an incompatible future writer sharing the
                # root): self-heal exactly like a torn entry — forget,
                # delete, recount as a miss.
                with self._lock:
                    self._memory.pop(key, None)
                try:
                    self._path(key).unlink()
                except OSError:
                    pass
        with self._lock:
            if report is None:
                self._misses += 1
                return None
            self._hits += 1
        return report

    def store(self, key: str, report) -> bool:
        """Persist ``report`` under ``key`` (atomic). Never raises —
        a read-only or full filesystem degrades to a cold cache."""
        entry = {
            "schema": ENTRY_SCHEMA,
            "salt": cache_salt(),
            "key": key,
            "name": report.name,
            "created": time.time(),
            "report": report.to_dict(),
        }
        # No sort_keys anywhere on the report payload: byte-identical
        # warm re-runs require preserving the engine's dict key order
        # (e.g. the init valuation) through the JSON round trip.
        text = json.dumps(entry["report"], separators=(",", ":"))
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.root), prefix="tmp-", suffix=".part")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle, indent=2)
                    handle.write("\n")
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        from .resilience import faults

        faults.on_cache_store(report.name, self._path(key))
        self._remember(key, text)
        with self._lock:
            self._stores += 1
        return True

    def lookup_for(self, key: str, request):
        """:meth:`lookup` plus presentation restore — the hit path the
        engine and :meth:`get` share."""
        report = self.lookup(key)
        if report is not None:
            self._restore_presentation(report, request)
        return report

    @staticmethod
    def _restore_presentation(report, request) -> None:
        """Re-derive the request-echo fields a hit must not inherit.

        ``name``/``tag`` are excluded from the key, so the stored report
        carries whatever the *storing* request displayed; this resets
        them to what ``execute_request`` would have produced for the
        incoming request (the resolved benchmark name — coin-flip
        variant suffix included — when no explicit name was given).
        """
        report.tag = request.tag
        if request.name is not None:
            report.name = request.name
        elif request.benchmark is not None:
            from .batch.engine import _resolve_benchmark

            try:
                report.name = _resolve_benchmark(request).name
            except Exception:  # pragma: no cover - key already resolved
                pass
        else:
            report.name = request.display_name

    def get(self, request):
        """Convenience request-level lookup (the engine uses the
        key-based :meth:`lookup_for`/:meth:`store` flow to avoid
        fingerprinting twice).  An unresolvable request bypasses the
        cache entirely — no hit/miss is recorded."""
        key = self.request_key(request)
        if key is None:
            return None
        return self.lookup_for(key, request)

    def put(self, request, report) -> bool:
        key = self.request_key(request)
        if key is None or report.status != "ok":
            return False
        return self.store(key, report)

    # -- internals ------------------------------------------------------

    def _read_disk(self, key: str) -> Optional[str]:
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            # Torn or hand-mangled JSON: self-clean like a stale entry.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        stale = (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or entry.get("salt") != cache_salt()
            or not isinstance(entry.get("report"), dict)
        )
        if stale:
            # Self-clean: a corrupt or outdated entry will never hit again.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return json.dumps(entry["report"], separators=(",", ":"))

    def _remember(self, key: str, text: str) -> None:
        if self.max_memory_entries == 0:
            return
        with self._lock:
            self._memory[key] = text
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    # -- accounting -----------------------------------------------------

    def record(self, hit: bool, stored: bool = False) -> None:
        """Fold a pool worker's hit/miss/store into this (parent)
        instance, so ``stats()`` reflects the whole batch."""
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1
            if stored:
                self._stores += 1

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def worker_config(self) -> Dict[str, Any]:
        """Picklable recipe for per-process clones over the same root."""
        return {"root": str(self.root), "max_memory_entries": self.max_memory_entries}

    def stats(self) -> CacheStats:
        entries = 0
        size = 0
        try:
            for path in self.root.glob("*.json"):
                try:
                    size += path.stat().st_size
                    entries += 1
                except OSError:
                    continue
        except OSError:
            pass
        with self._lock:
            return CacheStats(
                root=str(self.root),
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                entries=entries,
                size_bytes=size,
                memory_entries=len(self._memory),
            )

    def clear(self) -> int:
        """Delete every entry (and stray temp file); returns the count."""
        removed = 0
        try:
            for path in list(self.root.glob("*.json")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            for path in list(self.root.glob("tmp-*.part")):
                try:
                    path.unlink()
                except OSError:
                    continue
        except OSError:
            pass
        with self._lock:
            self._memory.clear()
        return removed

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, memory={len(self._memory)})"
