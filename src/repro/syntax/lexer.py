"""Tokenizer for the surface language.

Token kinds are deliberately few: identifiers/keywords, numeric
literals, and a fixed set of punctuation/operator symbols.  The lexer
tracks line and column for error messages and supports ``#``-to-end-of-
line comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "var",
        "sample",
        "skip",
        "tick",
        "if",
        "then",
        "else",
        "fi",
        "prob",
        "while",
        "do",
        "od",
        "and",
        "or",
        "not",
        "true",
        "false",
        "discrete",
        "uniform",
        "unifint",
        "bernoulli",
        "binomial",
        "point",
        "geometric",
    }
)

# Multi-character symbols first so maximal munch works by ordered scan.
_SYMBOLS = [":=", "<=", ">=", "==", "~", ";", ",", ":", "(", ")", "*", "+", "-", "<", ">", "=", "^"]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'number' | symbol text | 'eof'
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text if self.kind != "eof" else "<end of input>"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on illegal input."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    seen_dot = True
                i += 1
            text = source[start:i]
            if text.endswith("."):
                raise ParseError(f"malformed number {text!r}", line, col)
            tokens.append(Token("number", text, line, col))
            col += i - start
            continue
        matched = False
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token(sym, sym, line, col))
                i += len(sym)
                col += len(sym)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", "", line, col))
    return tokens
