"""Recursive-descent parser for the paper's language (Figure 1).

Surface syntax example::

    var x, y;
    sample r  ~ discrete(1: 0.25, -1: 0.75);
    sample r2 ~ uniform(1, 2);

    while x >= 1 do
        x := x + r;
        y := r2;
        tick(x * y)
    od

Supported statements: ``skip``, assignment ``:=``, ``tick(e)``,
``if b then s else s fi`` (else optional), ``if prob(p) ...``,
``if * ...`` (nondeterminism), ``while b do s od`` and ``;`` sequencing.

The paper's inline discrete-distribution notation
``y := y + (-1, 0, 1) : (0.5, 0.1, 0.4)`` (Figure 4) is desugared into a
fresh sampling variable with a :class:`DiscreteDistribution`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..polynomials import Polynomial
from ..semantics.distributions import (
    BernoulliDistribution,
    BinomialDistribution,
    DiscreteDistribution,
    Distribution,
    GeometricDistribution,
    PointDistribution,
    UniformDistribution,
    UniformIntDistribution,
)
from .ast import (
    And,
    Assign,
    Atom,
    BoolConst,
    BoolExpr,
    If,
    NondetIf,
    Not,
    Or,
    ProbIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)
from .lexer import Token, tokenize

__all__ = ["parse_program", "parse_expression", "parse_condition"]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.pvars: List[str] = []
        self.rvars: Dict[str, Distribution] = {}
        self._fresh_counter = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, found {tok!s}", tok.line, tok.column)
        return self.advance()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    # -- declarations -------------------------------------------------------

    def parse_program(self, name: Optional[str] = None) -> Program:
        while self.check("keyword", "var") or self.check("keyword", "sample"):
            if self.accept("keyword", "var"):
                self._parse_var_decl()
            else:
                self.advance()
                self._parse_sample_decl()
        body = self.parse_stmt()
        self.expect("eof")
        return Program(pvars=self.pvars, rvars=self.rvars, body=body, name=name)

    def _parse_var_decl(self) -> None:
        while True:
            tok = self.expect("ident")
            if tok.text in self.pvars or tok.text in self.rvars:
                raise ParseError(f"duplicate declaration of {tok.text!r}", tok.line, tok.column)
            self.pvars.append(tok.text)
            if not self.accept(","):
                break
        self.expect(";")

    def _parse_sample_decl(self) -> None:
        tok = self.expect("ident")
        if tok.text in self.pvars or tok.text in self.rvars:
            raise ParseError(f"duplicate declaration of {tok.text!r}", tok.line, tok.column)
        self.expect("~")
        self.rvars[tok.text] = self._parse_distribution()
        self.expect(";")

    def _parse_distribution(self) -> Distribution:
        tok = self.peek()
        if tok.kind != "keyword":
            raise self.error("expected a distribution name")
        self.advance()
        self.expect("(")
        try:
            dist = self._parse_distribution_body(tok.text)
        except ValueError as exc:  # re-raise with position info
            raise ParseError(str(exc), tok.line, tok.column) from exc
        self.expect(")")
        return dist

    def _parse_distribution_body(self, kind: str) -> Distribution:
        if kind == "discrete":
            values, probs = [], []
            while True:
                values.append(self._parse_signed_number())
                self.expect(":")
                probs.append(self._parse_signed_number())
                if not self.accept(","):
                    break
            return DiscreteDistribution(values, probs)
        if kind == "uniform":
            a = self._parse_signed_number()
            self.expect(",")
            b = self._parse_signed_number()
            return UniformDistribution(a, b)
        if kind == "unifint":
            a = self._parse_signed_number()
            self.expect(",")
            b = self._parse_signed_number()
            return UniformIntDistribution(int(a), int(b))
        if kind == "bernoulli":
            return BernoulliDistribution(self._parse_signed_number())
        if kind == "binomial":
            n = self._parse_signed_number()
            self.expect(",")
            p = self._parse_signed_number()
            return BinomialDistribution(int(n), p)
        if kind == "point":
            return PointDistribution(self._parse_signed_number())
        if kind == "geometric":
            return GeometricDistribution(self._parse_signed_number())
        raise self.error(f"unknown distribution {kind!r}")

    def _parse_signed_number(self) -> float:
        sign = -1.0 if self.accept("-") else 1.0
        tok = self.expect("number")
        return sign * float(tok.text)

    # -- statements -----------------------------------------------------------

    def parse_stmt(self) -> Stmt:
        stmts = [self._parse_simple_stmt()]
        while self.accept(";"):
            # Permit a trailing semicolon before block closers.
            if self.peek().kind in ("eof",) or self.peek().text in ("od", "fi", "else"):
                break
            stmts.append(self._parse_simple_stmt())
        return Seq.of(*stmts)

    def _parse_simple_stmt(self) -> Stmt:
        tok = self.peek()
        stmt = self._parse_simple_stmt_body(tok)
        # Stamp the source position of the statement's first token.  The
        # Stmt subclasses are frozen dataclasses; ``pos`` is declared on
        # the base class outside the fields (see syntax.ast), so we
        # bypass the frozen guard.  Inline-distribution desugaring can
        # return a Seq wrapper: stamp its synthesized parts too.
        for node in (stmt, *stmt.children()):
            if node.pos is None:
                object.__setattr__(node, "pos", (tok.line, tok.column))
        return stmt

    def _parse_simple_stmt_body(self, tok) -> Stmt:
        if self.accept("keyword", "skip"):
            return Skip()
        if self.accept("keyword", "tick"):
            self.expect("(")
            cost = self.parse_expr()
            self.expect(")")
            return Tick(cost)
        if self.accept("keyword", "while"):
            cond = self.parse_bexpr()
            self.expect("keyword", "do")
            body = self.parse_stmt()
            self.expect("keyword", "od")
            return While(cond, body)
        if self.accept("keyword", "if"):
            return self._parse_if()
        if tok.kind == "ident":
            name = self.advance().text
            self.expect(":=")
            expr = self.parse_expr()
            return Assign(name, expr)
        raise self.error(f"expected a statement, found {tok!s}")

    def _parse_if(self) -> Stmt:
        if self.accept("*"):
            then_branch, else_branch = self._parse_if_tail()
            return NondetIf(then_branch, else_branch)
        if self.accept("keyword", "prob"):
            self.expect("(")
            p = self._parse_signed_number()
            self.expect(")")
            then_branch, else_branch = self._parse_if_tail()
            return ProbIf(p, then_branch, else_branch)
        cond = self.parse_bexpr()
        then_branch, else_branch = self._parse_if_tail()
        return If(cond, then_branch, else_branch)

    def _parse_if_tail(self) -> Tuple[Stmt, Stmt]:
        self.expect("keyword", "then")
        then_branch = self.parse_stmt()
        else_branch: Stmt = Skip()
        if self.accept("keyword", "else"):
            else_branch = self.parse_stmt()
        self.expect("keyword", "fi")
        return then_branch, else_branch

    # -- boolean expressions -----------------------------------------------

    def parse_bexpr(self) -> BoolExpr:
        left = self._parse_bterm()
        while self.accept("keyword", "or"):
            left = Or(left, self._parse_bterm())
        return left

    def _parse_bterm(self) -> BoolExpr:
        left = self._parse_bfactor()
        while self.accept("keyword", "and"):
            left = And(left, self._parse_bfactor())
        return left

    def _parse_bfactor(self) -> BoolExpr:
        if self.accept("keyword", "not"):
            return Not(self._parse_bfactor())
        if self.accept("keyword", "true"):
            return BoolConst(True)
        if self.accept("keyword", "false"):
            return BoolConst(False)
        # A parenthesis is ambiguous: '(' bexpr ')' or '(' expr ')' '<=' ...
        if self.check("("):
            saved = self.pos
            self.advance()
            try:
                inner = self.parse_bexpr()
                self.expect(")")
                return inner
            except ParseError:
                self.pos = saved
        lhs = self.parse_expr()
        op_tok = self.peek()
        if op_tok.text not in ("<=", ">=", "<", ">", "=="):
            raise self.error(f"expected a comparison operator, found {op_tok!s}")
        self.advance()
        rhs = self.parse_expr()
        return Atom.compare(lhs, op_tok.text, rhs)

    # -- arithmetic expressions -----------------------------------------------

    def parse_expr(self) -> Polynomial:
        left = self._parse_term()
        while True:
            if self.accept("+"):
                left = left + self._parse_term()
            elif self.accept("-"):
                left = left - self._parse_term()
            else:
                return left

    def _parse_term(self) -> Polynomial:
        left = self._parse_factor()
        while self.accept("*"):
            left = left * self._parse_factor()
        return left

    def _parse_factor(self) -> Polynomial:
        if self.accept("-"):
            return -self._parse_factor()
        base = self._parse_primary()
        # Power binds tighter than unary minus: -x^2 is -(x^2), and the
        # pretty-printer's x^2 output round-trips through here.  Chained
        # exponents are rejected rather than silently associating one
        # way: 2^3^2 means 512 in mathematics but 64 left-to-right.
        if self.accept("^"):
            exp_tok = self.expect("number")
            if "." in exp_tok.text:
                raise ParseError(
                    f"exponent must be a nonnegative integer, got {exp_tok.text!r}",
                    exp_tok.line,
                    exp_tok.column,
                )
            base = base ** int(exp_tok.text)
            if self.check("^"):
                tok = self.peek()
                raise ParseError(
                    "chained '^' is ambiguous; parenthesize the intended base",
                    tok.line,
                    tok.column,
                )
        return base

    def _parse_primary(self) -> Polynomial:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return Polynomial.constant(float(tok.text))
        if tok.kind == "ident":
            self.advance()
            return Polynomial.variable(tok.text)
        if self.check("("):
            inline = self._try_parse_inline_distribution()
            if inline is not None:
                return inline
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise self.error(f"expected an expression, found {tok!s}")

    def _try_parse_inline_distribution(self) -> Optional[Polynomial]:
        """Parse ``(v1, ..., vk) : (p1, ..., pk)`` with backtracking."""
        saved = self.pos
        try:
            self.expect("(")
            values = [self._parse_signed_number()]
            while self.accept(","):
                values.append(self._parse_signed_number())
            self.expect(")")
            if len(values) < 2 or not self.check(":"):
                self.pos = saved
                return None
            self.expect(":")
            self.expect("(")
            probs = [self._parse_signed_number()]
            while self.accept(","):
                probs.append(self._parse_signed_number())
            self.expect(")")
        except ParseError:
            self.pos = saved
            return None
        tok = self.tokens[saved]
        try:
            dist = DiscreteDistribution(values, probs)
        except ValueError as exc:
            raise ParseError(str(exc), tok.line, tok.column) from exc
        name = self._fresh_rvar()
        self.rvars[name] = dist
        return Polynomial.variable(name)

    def _fresh_rvar(self) -> str:
        while True:
            name = f"__d{self._fresh_counter}"
            self._fresh_counter += 1
            if name not in self.rvars and name not in self.pvars:
                return name


def parse_program(source: str, name: Optional[str] = None) -> Program:
    """Parse a full program (declarations + body) from source text."""
    return _Parser(tokenize(source)).parse_program(name=name)


def parse_expression(source: str) -> Polynomial:
    """Parse a standalone arithmetic expression (for tests and tools)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr


def parse_condition(source: str) -> BoolExpr:
    """Parse a standalone boolean expression (for invariant annotations)."""
    parser = _Parser(tokenize(source))
    cond = parser.parse_bexpr()
    parser.expect("eof")
    return cond
