"""Pretty-printer: render an AST back to parseable surface syntax.

``parse_program(pretty(p))`` is semantically identical to ``p`` (the
round-trip property is checked by the test suite); inline distributions
that were desugared into fresh sampling variables are printed as
ordinary ``sample`` declarations.
"""

from __future__ import annotations

from .ast import (
    And,
    Assign,
    Atom,
    BoolConst,
    BoolExpr,
    If,
    NondetIf,
    Not,
    Or,
    ProbIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)

__all__ = ["pretty", "pretty_stmt", "pretty_cond"]

_INDENT = "    "


def pretty_cond(cond: BoolExpr) -> str:
    """Render a boolean expression."""
    if isinstance(cond, Atom):
        op = ">" if cond.strict else ">="
        return f"{cond.poly} {op} 0"
    if isinstance(cond, BoolConst):
        return "true" if cond.value else "false"
    if isinstance(cond, And):
        return f"({pretty_cond(cond.left)} and {pretty_cond(cond.right)})"
    if isinstance(cond, Or):
        return f"({pretty_cond(cond.left)} or {pretty_cond(cond.right)})"
    if isinstance(cond, Not):
        return f"(not {pretty_cond(cond.operand)})"
    raise TypeError(f"unknown condition node {type(cond).__name__}")


def pretty_stmt(stmt: Stmt, depth: int = 0) -> str:
    """Render a statement with indentation."""
    pad = _INDENT * depth
    if isinstance(stmt, Skip):
        return f"{pad}skip"
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.var} := {stmt.expr}"
    if isinstance(stmt, Tick):
        return f"{pad}tick({stmt.cost})"
    if isinstance(stmt, Seq):
        return ";\n".join(pretty_stmt(s, depth) for s in stmt.stmts)
    if isinstance(stmt, While):
        body = pretty_stmt(stmt.body, depth + 1)
        return f"{pad}while {pretty_cond(stmt.cond)} do\n{body}\n{pad}od"
    if isinstance(stmt, (If, ProbIf, NondetIf)):
        if isinstance(stmt, If):
            head = f"if {pretty_cond(stmt.cond)}"
        elif isinstance(stmt, ProbIf):
            head = f"if prob({stmt.prob:g})"
        else:
            head = "if *"
        then_text = pretty_stmt(stmt.then_branch, depth + 1)
        lines = [f"{pad}{head} then", then_text]
        if not isinstance(stmt.else_branch, Skip):
            lines.append(f"{pad}else")
            lines.append(pretty_stmt(stmt.else_branch, depth + 1))
        lines.append(f"{pad}fi")
        return "\n".join(lines)
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


def pretty(program: Program) -> str:
    """Render a full program, declarations included."""
    lines = []
    if program.pvars:
        lines.append("var " + ", ".join(program.pvars) + ";")
    for name, dist in program.rvars.items():
        lines.append(f"sample {name} ~ {dist!r};")
    if lines:
        lines.append("")
    lines.append(pretty_stmt(program.body))
    return "\n".join(lines)
