"""Source-to-source program transformations.

Currently provided:

* :func:`replace_nondet` — replace every ``if *`` by ``if prob(p)``.
  This is the transformation behind Table 5 of the paper ("Programs in
  which Nondeterminism is Replaced with Probability"), needed because
  plain Monte-Carlo simulation cannot resolve demonic choices.
* :func:`map_statements` — generic bottom-up statement rewriting, the
  building block for user-defined transformations.
"""

from __future__ import annotations

from typing import Callable, Optional

from .ast import If, NondetIf, ProbIf, Program, Seq, Stmt, While

__all__ = ["map_statements", "replace_nondet"]


def map_statements(stmt: Stmt, fn: Callable[[Stmt], Stmt]) -> Stmt:
    """Rebuild ``stmt`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives each node *after* its children were rewritten and
    returns the node to use in its place.
    """
    if isinstance(stmt, Seq):
        rebuilt: Stmt = Seq.of(*(map_statements(s, fn) for s in stmt.stmts))
    elif isinstance(stmt, While):
        rebuilt = While(stmt.cond, map_statements(stmt.body, fn))
    elif isinstance(stmt, If):
        rebuilt = If(stmt.cond, map_statements(stmt.then_branch, fn), map_statements(stmt.else_branch, fn))
    elif isinstance(stmt, ProbIf):
        rebuilt = ProbIf(stmt.prob, map_statements(stmt.then_branch, fn), map_statements(stmt.else_branch, fn))
    elif isinstance(stmt, NondetIf):
        rebuilt = NondetIf(map_statements(stmt.then_branch, fn), map_statements(stmt.else_branch, fn))
    else:
        rebuilt = stmt
    return fn(rebuilt)


def replace_nondet(program: Program, prob: float = 0.5, name: Optional[str] = None) -> Program:
    """Replace every nondeterministic branch by ``if prob(prob)``.

    Produces the "modified" programs of Table 5; the original program is
    left untouched.
    """

    def rewrite(stmt: Stmt) -> Stmt:
        if isinstance(stmt, NondetIf):
            return ProbIf(prob, stmt.then_branch, stmt.else_branch)
        return stmt

    new_body = map_statements(program.body, rewrite)
    new_name = name if name is not None else (f"{program.name}-probabilistic" if program.name else None)
    return Program(pvars=list(program.pvars), rvars=dict(program.rvars), body=new_body, name=new_name)
