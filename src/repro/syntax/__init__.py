"""Language frontend: AST, lexer, parser, pretty-printer, transforms."""

from .ast import (
    And,
    Assign,
    Atom,
    BoolConst,
    BoolExpr,
    If,
    NondetIf,
    Not,
    Or,
    ProbIf,
    Program,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)
from .parser import parse_condition, parse_expression, parse_program
from .pretty import pretty, pretty_cond, pretty_stmt
from .transform import map_statements, replace_nondet

__all__ = [
    "And",
    "Assign",
    "Atom",
    "BoolConst",
    "BoolExpr",
    "If",
    "NondetIf",
    "Not",
    "Or",
    "ProbIf",
    "Program",
    "Seq",
    "Skip",
    "Stmt",
    "Tick",
    "While",
    "map_statements",
    "parse_condition",
    "parse_expression",
    "parse_program",
    "pretty",
    "pretty_cond",
    "pretty_stmt",
    "replace_nondet",
]
