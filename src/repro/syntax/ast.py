"""Abstract syntax for nondeterministic probabilistic programs.

This mirrors the grammar of Figure 1 in the paper:

* statements: ``skip``, assignment, ``tick``, sequencing, conditionals,
  probabilistic branching ``if prob(p)``, nondeterministic branching
  ``if *`` and ``while`` loops;
* arithmetic expressions are polynomials over program and sampling
  variables (we reuse :class:`repro.polynomials.Polynomial` directly);
* boolean expressions are propositional formulas over polynomial
  inequalities.

Boolean atoms are normalized to ``poly >= 0`` / ``poly > 0``; negation
is pushed to the atoms (``not (p >= 0)`` becomes ``-p > 0``), and a DNF
conversion is provided because the synthesis algorithm generates one
Handelman constraint site per disjunct of a guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..errors import NonLinearError, SemanticsError
from ..polynomials import Polynomial

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..semantics.distributions import Distribution

__all__ = [
    "Atom",
    "BoolExpr",
    "And",
    "Or",
    "Not",
    "BoolConst",
    "Stmt",
    "Skip",
    "Assign",
    "Tick",
    "Seq",
    "If",
    "ProbIf",
    "NondetIf",
    "While",
    "Program",
]


# ---------------------------------------------------------------------------
# Boolean expressions
# ---------------------------------------------------------------------------


class BoolExpr:
    """Base class of boolean expressions over program variables."""

    def evaluate(self, valuation: Mapping[str, float]) -> bool:
        raise NotImplementedError

    def negate(self) -> "BoolExpr":
        """Logical negation in negation normal form."""
        raise NotImplementedError

    def to_dnf(self) -> List[List["Atom"]]:
        """Disjunctive normal form: a list of conjunctions of atoms."""
        raise NotImplementedError

    def atoms(self) -> Iterator["Atom"]:
        raise NotImplementedError

    def variables(self) -> frozenset:
        out: set = set()
        for atom in self.atoms():
            out |= atom.poly.variables()
        return frozenset(out)


@dataclass(frozen=True)
class Atom(BoolExpr):
    """The inequality ``poly >= 0`` (or ``poly > 0`` when ``strict``)."""

    poly: Polynomial
    strict: bool = False

    def __post_init__(self):
        if not self.poly.is_numeric():
            raise NonLinearError("boolean atoms must have numeric coefficients")

    @classmethod
    def compare(cls, lhs: Polynomial, op: str, rhs: Polynomial) -> "BoolExpr":
        """Build an atom from a comparison ``lhs op rhs``."""
        if op == ">=":
            return cls(lhs - rhs, strict=False)
        if op == "<=":
            return cls(rhs - lhs, strict=False)
        if op == ">":
            return cls(lhs - rhs, strict=True)
        if op == "<":
            return cls(rhs - lhs, strict=True)
        if op == "==":
            return And(cls(lhs - rhs), cls(rhs - lhs))
        raise SemanticsError(f"unsupported comparison operator {op!r}")

    def evaluate(self, valuation: Mapping[str, float]) -> bool:
        value = self.poly.evaluate_numeric(valuation)
        return value > 0 if self.strict else value >= 0

    def negate(self) -> "Atom":
        # not (p >= 0)  ==  -p > 0 ; not (p > 0)  ==  -p >= 0
        return Atom(-self.poly, strict=not self.strict)

    def relaxed(self) -> "Atom":
        """The non-strict closure (used for constraint generation)."""
        return Atom(self.poly, strict=False) if self.strict else self

    def to_dnf(self) -> List[List["Atom"]]:
        return [[self]]

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def __str__(self) -> str:
        return f"{self.poly} {'>' if self.strict else '>='} 0"


@dataclass(frozen=True)
class BoolConst(BoolExpr):
    """The constants ``true`` / ``false``."""

    value: bool

    def evaluate(self, valuation: Mapping[str, float]) -> bool:
        return self.value

    def negate(self) -> "BoolConst":
        return BoolConst(not self.value)

    def to_dnf(self) -> List[List[Atom]]:
        # true: one empty conjunction; false: no disjuncts.
        return [[]] if self.value else []

    def atoms(self) -> Iterator[Atom]:
        return iter(())

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class And(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def evaluate(self, valuation: Mapping[str, float]) -> bool:
        return self.left.evaluate(valuation) and self.right.evaluate(valuation)

    def negate(self) -> BoolExpr:
        return Or(self.left.negate(), self.right.negate())

    def to_dnf(self) -> List[List[Atom]]:
        return [lc + rc for lc in self.left.to_dnf() for rc in self.right.to_dnf()]

    def atoms(self) -> Iterator[Atom]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def evaluate(self, valuation: Mapping[str, float]) -> bool:
        return self.left.evaluate(valuation) or self.right.evaluate(valuation)

    def negate(self) -> BoolExpr:
        return And(self.left.negate(), self.right.negate())

    def to_dnf(self) -> List[List[Atom]]:
        return self.left.to_dnf() + self.right.to_dnf()

    def atoms(self) -> Iterator[Atom]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(BoolExpr):
    """Negation node; normalized away by :meth:`negate`/:meth:`to_dnf`."""

    operand: BoolExpr

    def evaluate(self, valuation: Mapping[str, float]) -> bool:
        return not self.operand.evaluate(valuation)

    def negate(self) -> BoolExpr:
        return self.operand

    def to_dnf(self) -> List[List[Atom]]:
        return self.operand.negate().to_dnf()

    def atoms(self) -> Iterator[Atom]:
        yield from self.operand.atoms()

    def __str__(self) -> str:
        return f"(not {self.operand})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of program statements."""

    #: Source position ``(line, column)`` of the statement's first token,
    #: set by the parser via ``object.__setattr__`` (the subclasses are
    #: frozen dataclasses).  ``None`` for programmatically built ASTs.
    #: Kept out of the dataclass fields so equality, hashing and ``repr``
    #: are unaffected — two structurally equal statements compare equal
    #: regardless of where they were written.
    pos: Optional[Tuple[int, int]] = None

    def children(self) -> Sequence["Stmt"]:
        return ()


@dataclass(frozen=True)
class Skip(Stmt):
    """``skip`` — the no-op assignment."""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign(Stmt):
    """``var := expr`` where ``expr`` may mention sampling variables."""

    var: str
    expr: Polynomial

    def __str__(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass(frozen=True)
class Tick(Stmt):
    """``tick(cost)`` — accrue ``cost`` (a polynomial over program vars)."""

    cost: Polynomial

    def __str__(self) -> str:
        return f"tick({self.cost})"


@dataclass(frozen=True)
class Seq(Stmt):
    """Sequential composition of two or more statements."""

    stmts: Tuple[Stmt, ...]

    def __post_init__(self):
        if len(self.stmts) < 2:
            raise SemanticsError("Seq requires at least two statements")

    @classmethod
    def of(cls, *stmts: Stmt) -> Stmt:
        """Smart constructor flattening nested sequences."""
        flat: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Seq):
                flat.extend(stmt.stmts)
            else:
                flat.append(stmt)
        if not flat:
            return Skip()
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def children(self) -> Sequence[Stmt]:
        return self.stmts

    def __str__(self) -> str:
        return "; ".join(str(s) for s in self.stmts)


@dataclass(frozen=True)
class If(Stmt):
    """``if cond then ... else ... fi`` (else defaults to skip)."""

    cond: BoolExpr
    then_branch: Stmt
    else_branch: Stmt = field(default_factory=Skip)

    def children(self) -> Sequence[Stmt]:
        return (self.then_branch, self.else_branch)

    def __str__(self) -> str:
        return f"if {self.cond} then {self.then_branch} else {self.else_branch} fi"


@dataclass(frozen=True)
class ProbIf(Stmt):
    """``if prob(p) then ... else ... fi``."""

    prob: float
    then_branch: Stmt
    else_branch: Stmt = field(default_factory=Skip)

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0:
            raise SemanticsError(f"branch probability {self.prob} outside [0, 1]")

    def children(self) -> Sequence[Stmt]:
        return (self.then_branch, self.else_branch)

    def __str__(self) -> str:
        return f"if prob({self.prob:g}) then {self.then_branch} else {self.else_branch} fi"


@dataclass(frozen=True)
class NondetIf(Stmt):
    """``if * then ... else ... fi`` — demonic nondeterminism."""

    then_branch: Stmt
    else_branch: Stmt = field(default_factory=Skip)

    def children(self) -> Sequence[Stmt]:
        return (self.then_branch, self.else_branch)

    def __str__(self) -> str:
        return f"if * then {self.then_branch} else {self.else_branch} fi"


@dataclass(frozen=True)
class While(Stmt):
    """``while cond do ... od``."""

    cond: BoolExpr
    body: Stmt

    def children(self) -> Sequence[Stmt]:
        return (self.body,)

    def __str__(self) -> str:
        return f"while {self.cond} do {self.body} od"


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """A complete program: declarations plus a body statement.

    ``pvars`` are the program variables (Section 2.2); ``rvars`` maps
    each sampling variable to its distribution.  The two sets must be
    disjoint.
    """

    pvars: List[str]
    rvars: Dict[str, Distribution]
    body: Stmt
    name: Optional[str] = None

    def __post_init__(self):
        overlap = set(self.pvars) & set(self.rvars)
        if overlap:
            raise SemanticsError(f"variables declared as both program and sampling: {sorted(overlap)}")
        self.validate()

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """Check that every identifier is declared and used legally."""
        declared = set(self.pvars) | set(self.rvars)
        pvars = set(self.pvars)

        def check_expr(poly: Polynomial, allow_rvars: bool, where: str) -> None:
            for var in poly.variables():
                if var not in declared:
                    raise SemanticsError(f"undeclared variable {var!r} in {where}")
                if not allow_rvars and var not in pvars:
                    raise SemanticsError(
                        f"sampling variable {var!r} used in {where}; only program variables are allowed"
                    )

        def check_cond(cond: BoolExpr, where: str) -> None:
            for atom in cond.atoms():
                check_expr(atom.poly, allow_rvars=False, where=where)

        def walk(stmt: Stmt) -> None:
            if isinstance(stmt, Assign):
                if stmt.var not in pvars:
                    raise SemanticsError(f"assignment to undeclared program variable {stmt.var!r}")
                check_expr(stmt.expr, allow_rvars=True, where=f"assignment to {stmt.var}")
            elif isinstance(stmt, Tick):
                check_expr(stmt.cost, allow_rvars=False, where="tick cost")
            elif isinstance(stmt, While):
                check_cond(stmt.cond, "loop guard")
            elif isinstance(stmt, If):
                check_cond(stmt.cond, "branch condition")
            for child in stmt.children():
                walk(child)

        walk(self.body)

    # -- convenience --------------------------------------------------------

    def statements(self) -> Iterator[Stmt]:
        """Pre-order traversal of all statements."""

        def walk(stmt: Stmt) -> Iterator[Stmt]:
            yield stmt
            for child in stmt.children():
                yield from walk(child)

        return walk(self.body)

    def has_nondeterminism(self) -> bool:
        return any(isinstance(s, NondetIf) for s in self.statements())

    def tick_costs(self) -> List[Polynomial]:
        return [s.cost for s in self.statements() if isinstance(s, Tick)]

    def __str__(self) -> str:
        from .pretty import pretty  # local import to avoid a cycle

        return pretty(self)
