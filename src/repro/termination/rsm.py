"""Ranking supermartingales and the concentration property.

Theorems 6.10/6.12 require the *concentration* property: positive
constants ``a, b`` with ``P(T > n) <= a * exp(-b n)`` for every
scheduler.  Following the paper (which reuses the tool of [18]), a
sufficient certificate is a **difference-bounded ranking
supermartingale** (RSM): a function ``eta`` over configurations with

* ``eta(l, v) >= 0``                      on every label's invariant,
* ``pre_eta(l, v) <= eta(l, v) - eps``    at every non-terminal label
  (for *all* successors of nondeterministic labels — termination must
  hold under every scheduler),
* bounded stepwise differences.

We synthesize a linear RSM with the same Handelman + LP machinery as
the cost analysis; for a linear ``eta``, bounded differences follow
from the bounded-update property, which is checked separately.  As a
by-product, ``eta(l_in, v) / eps`` bounds the expected termination
time, so the certificate also witnesses finite termination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.conditions import ConditionReport, check_bounded_updates
from ..core.handelman import certificate_equalities
from ..core.lp import LinearProgram
from ..core.preexpectation import pre_expectation_cases
from ..core.templates import make_template
from ..errors import InfeasibleError, UnboundedError
from ..invariants import InvariantMap
from ..polynomials import LinForm, Polynomial
from ..semantics.cfg import CFG, TerminalLabel

__all__ = ["RankingCertificate", "synthesize_rsm", "certify_concentration"]


@dataclass
class RankingCertificate:
    """A synthesized RSM and what it certifies."""

    eta: Dict[int, Polynomial]
    epsilon: float
    expected_time_bound: float
    bounded_updates: ConditionReport
    lp_variables: int = 0
    lp_equalities: int = 0
    runtime: float = 0.0

    @property
    def certifies_concentration(self) -> bool:
        """Concentration needs the RSM *and* bounded differences."""
        return bool(self.bounded_updates)

    def eta_at(self, label_id: int, valuation: Mapping[str, float]) -> float:
        return self.eta[label_id].evaluate_numeric(valuation)


def synthesize_rsm(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    epsilon: float = 1.0,
    degree: int = 1,
    max_multiplicands: Optional[int] = None,
) -> RankingCertificate:
    """Synthesize an ``epsilon``-decreasing ranking supermartingale.

    Raises :class:`InfeasibleError` when no RSM of the requested degree
    exists over the given invariants (the program may still terminate —
    the certificate is sufficient, not necessary).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    start = time.perf_counter()
    template = make_template(cfg, degree)
    lp = LinearProgram()
    for name in template.unknowns:
        lp.add_unknown(name, nonnegative=False)

    eta = template.polys
    for label in cfg:
        if isinstance(label, TerminalLabel):
            continue
        region = invariants.get(label.id)
        cap_default = max(degree, 1)
        for d_index, polyhedron in enumerate(region):
            gamma_base = polyhedron.constraints
            # Nonnegativity of eta on the invariant.
            equalities, multipliers = certificate_equalities(
                eta[label.id], gamma_base, cap_default, f"rsm_nn_{label.id}_{d_index}"
            )
            for name in multipliers:
                lp.add_unknown(name, nonnegative=True)
            for coeffs, rhs in equalities:
                lp.add_equality(coeffs, rhs)
            # Ranking condition: eta - pre_eta - eps >= 0, for every case
            # and every nondeterministic successor (demonic termination).
            for case_index, case in enumerate(pre_expectation_cases(cfg, eta, label)):
                target = eta[label.id] - case.poly - epsilon
                gammas = gamma_base + [atom.poly for atom in case.guard]
                cap = max_multiplicands if max_multiplicands is not None else max(target.degree(), 1)
                equalities, multipliers = certificate_equalities(
                    target, gammas, cap, f"rsm_{label.id}_{case_index}_{d_index}"
                )
                for name in multipliers:
                    lp.add_unknown(name, nonnegative=True)
                for coeffs, rhs in equalities:
                    lp.add_equality(coeffs, rhs)

    anchor = {var: float(init.get(var, 0.0)) for var in cfg.pvars}
    objective = template.at(cfg.entry).evaluate(anchor)
    if not isinstance(objective, LinForm):
        objective = LinForm(float(objective))
    lp.set_objective(objective, maximize=False)

    solution = lp.solve()
    eta_numeric = template.instantiate(solution.values)
    return RankingCertificate(
        eta=eta_numeric,
        epsilon=epsilon,
        expected_time_bound=solution.objective / epsilon,
        bounded_updates=check_bounded_updates(cfg),
        lp_variables=solution.num_variables,
        lp_equalities=solution.num_equalities,
        runtime=time.perf_counter() - start,
    )


def certify_concentration(
    cfg: CFG,
    invariants: InvariantMap,
    init: Mapping[str, float],
    epsilon: float = 1.0,
    degree: int = 1,
) -> Optional[RankingCertificate]:
    """Try to certify the concentration property (Section 2.2).

    Returns a certificate whose :attr:`certifies_concentration` flag is
    set when both the RSM synthesis and the bounded-difference check
    succeed, or ``None`` when no RSM of the requested degree exists.
    """
    try:
        return synthesize_rsm(cfg, invariants, init, epsilon=epsilon, degree=degree)
    except (InfeasibleError, UnboundedError):
        return None
