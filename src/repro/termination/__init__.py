"""Termination substrate: ranking supermartingales, concentration."""

from .rsm import RankingCertificate, certify_concentration, synthesize_rsm

__all__ = ["RankingCertificate", "certify_concentration", "synthesize_rsm"]
