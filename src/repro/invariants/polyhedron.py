"""Polyhedra: conjunctions of linear constraints ``g(x) >= 0``.

Definition 6.1 of the paper uses invariants whose value at each label is
a finite union of polyhedra; in all of the paper's benchmarks (and ours)
a single polyhedron per label suffices, which is what the synthesis
algorithm consumes: the constraint list is exactly the set ``Gamma`` fed
to Handelman's theorem (Theorem 7.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Sequence

from ..errors import InvariantError, NonLinearError
from ..polynomials import Polynomial
from ..syntax.ast import Atom, BoolExpr

__all__ = ["Polyhedron", "Region"]


class Polyhedron:
    """The set ``{x | g(x) >= 0 for every g in constraints}``.

    An empty constraint list denotes the whole space (the trivial
    invariant ``true``).
    """

    def __init__(self, constraints: Iterable[Polynomial] = ()):
        self._constraints: List[Polynomial] = []
        for g in constraints:
            self._append(g)

    def _append(self, g: Polynomial) -> None:
        if not g.is_numeric():
            raise NonLinearError("polyhedron constraints must be numeric")
        if not g.is_linear():
            raise NonLinearError(f"polyhedron constraints must be linear, got degree {g.degree()}: {g}")
        if g.is_constant():
            value = float(g.constant_term())
            if value < 0:
                raise InvariantError(f"constant constraint {g} >= 0 is unsatisfiable")
            return  # trivially true; drop
        if any(g == existing for existing in self._constraints):
            return
        self._constraints.append(g)

    # -- constructors ---------------------------------------------------

    @classmethod
    def whole_space(cls) -> "Polyhedron":
        return cls()

    @classmethod
    def from_condition(cls, cond: BoolExpr) -> "Polyhedron":
        """Build from a *conjunctive* boolean expression.

        Strict atoms are relaxed to their non-strict closure, which is
        sound for constraint generation (the constraints must hold on a
        superset of the reachable states).
        """
        disjuncts = cond.to_dnf()
        if len(disjuncts) != 1:
            raise InvariantError(
                f"invariant conditions must be conjunctive; got {len(disjuncts)} disjuncts"
            )
        return cls(atom.relaxed().poly for atom in disjuncts[0])

    @classmethod
    def from_atoms(cls, atoms: Sequence[Atom]) -> "Polyhedron":
        return cls(atom.relaxed().poly for atom in atoms)

    # -- inspection -----------------------------------------------------

    @property
    def constraints(self) -> List[Polynomial]:
        """The linear forms ``g`` with meaning ``g >= 0``."""
        return list(self._constraints)

    def is_whole_space(self) -> bool:
        return not self._constraints

    def variables(self) -> frozenset:
        out: set = set()
        for g in self._constraints:
            out |= g.variables()
        return frozenset(out)

    def contains(self, valuation: Mapping[str, float], tol: float = 1e-9) -> bool:
        """Membership test (with numeric slack)."""
        return all(g.evaluate_numeric(valuation) >= -tol for g in self._constraints)

    def __iter__(self) -> Iterator[Polynomial]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    # -- operations -------------------------------------------------------

    def conjoin(self, other: "Polyhedron") -> "Polyhedron":
        """Intersection of two polyhedra."""
        return Polyhedron(self._constraints + other.constraints)

    def with_constraints(self, extra: Iterable[Polynomial]) -> "Polyhedron":
        return Polyhedron(self._constraints + list(extra))

    def __repr__(self) -> str:
        if not self._constraints:
            return "Polyhedron(true)"
        parts = " and ".join(f"{g} >= 0" for g in self._constraints)
        return f"Polyhedron({parts})"


class Region:
    """A finite union of polyhedra — the invariant values of Definition 6.1.

    Constraint generation emits one Handelman site per disjunct: a
    polynomial is nonnegative on a union iff it is nonnegative on every
    member.
    """

    def __init__(self, disjuncts: Iterable[Polyhedron] = ()):
        self._disjuncts: List[Polyhedron] = list(disjuncts)
        if not self._disjuncts:
            self._disjuncts = [Polyhedron.whole_space()]

    # -- constructors ---------------------------------------------------

    @classmethod
    def whole_space(cls) -> "Region":
        return cls([Polyhedron.whole_space()])

    @classmethod
    def from_condition(cls, cond: BoolExpr) -> "Region":
        """One polyhedron per DNF disjunct (strict atoms relaxed)."""
        disjuncts = cond.to_dnf()
        if not disjuncts:
            raise InvariantError("invariant condition is unsatisfiable (false)")
        return cls(Polyhedron(atom.relaxed().poly for atom in conj) for conj in disjuncts)

    @classmethod
    def of(cls, polyhedron: Polyhedron) -> "Region":
        return cls([polyhedron])

    # -- inspection -----------------------------------------------------

    @property
    def disjuncts(self) -> List[Polyhedron]:
        return list(self._disjuncts)

    def is_whole_space(self) -> bool:
        return any(p.is_whole_space() for p in self._disjuncts)

    def variables(self) -> frozenset:
        out: set = set()
        for p in self._disjuncts:
            out |= p.variables()
        return frozenset(out)

    def contains(self, valuation: Mapping[str, float], tol: float = 1e-9) -> bool:
        return any(p.contains(valuation, tol) for p in self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self) -> Iterator[Polyhedron]:
        return iter(self._disjuncts)

    # -- operations -------------------------------------------------------

    def conjoin(self, other: "Region") -> "Region":
        """Intersection of two unions (pairwise conjunction)."""
        return Region(a.conjoin(b) for a in self._disjuncts for b in other._disjuncts)

    def __repr__(self) -> str:
        return "Region(" + " or ".join(repr(p) for p in self._disjuncts) + ")"
