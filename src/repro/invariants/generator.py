"""Automatic linear invariant generation via interval analysis.

The paper uses the Stanford Invariant Generator [82] to obtain linear
invariants; any sound generator can be substituted because invariants
are an *input* to the method.  The interval abstract interpreter itself
lives in :mod:`repro.check.interp` (it is shared with the lint pass);
this module converts its per-label boxes into an :class:`InvariantMap`
of interval constraints (``x - lo >= 0`` and ``hi - x >= 0``), which
can be merged with hand-written relational annotations when the
benchmarks need them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from ..check.interp import Interval, analyze_cfg
from ..polynomials import Polynomial
from ..semantics.cfg import CFG
from .annotations import InvariantMap
from .polyhedron import Polyhedron, Region

__all__ = ["Interval", "generate_interval_invariants"]


def generate_interval_invariants(
    cfg: CFG,
    init: Mapping[str, float],
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> InvariantMap:
    """Run the interval analysis from the initial valuation ``init``.

    Variables not mentioned by ``init`` start at 0 (matching the
    interpreter).  Returns interval constraints at every reachable
    label; unreachable labels get the (vacuous) trivial invariant.
    """
    analysis = analyze_cfg(
        cfg,
        init,
        widen_after=widen_after,
        narrow_passes=narrow_passes,
        max_iterations=max_iterations,
    )
    entries: Dict[int, Region] = {}
    for label_id, state in analysis.states.items():
        if state is None:
            continue
        constraints: List[Polynomial] = []
        for var, interval in sorted(state.items()):
            if math.isfinite(interval.lo):
                constraints.append(Polynomial.variable(var) - interval.lo)
            if math.isfinite(interval.hi):
                constraints.append(Polynomial.constant(interval.hi) - Polynomial.variable(var))
        entries[label_id] = Region.of(Polyhedron(constraints))
    return InvariantMap(entries)
