"""Automatic linear invariant generation via interval analysis.

The paper uses the Stanford Invariant Generator [82] to obtain linear
invariants; any sound generator can be substituted because invariants
are an *input* to the method.  This module provides a classic interval
abstract interpretation with widening:

* abstract state: one interval per program variable (plus bottom for
  unreachable labels);
* transfer functions follow the CFG label kinds; guards refine the
  intervals of variables they bound;
* a worklist iteration with widening after a few visits guarantees
  termination.

The result is an :class:`InvariantMap` of interval constraints
(``x - lo >= 0`` and ``hi - x >= 0``), which can be merged with
hand-written relational annotations when the benchmarks need them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..polynomials import Monomial, Polynomial
from ..semantics.cfg import (
    CFG,
    AssignLabel,
    BranchLabel,
    NondetLabel,
    ProbLabel,
    TickLabel,
)
from ..syntax.ast import Atom, BoolExpr
from .annotations import InvariantMap
from .polyhedron import Polyhedron, Region

__all__ = ["Interval", "generate_interval_invariants"]

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` (possibly unbounded)."""

    lo: float = -_INF
    hi: float = _INF

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @classmethod
    def top(cls) -> "Interval":
        return cls()

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    # -- lattice operations ------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        lo = self.lo if newer.lo >= self.lo else -_INF
        hi = self.hi if newer.hi <= self.hi else _INF
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def __le__(self, other: "Interval") -> bool:
        return self.lo >= other.lo and self.hi <= other.hi

    # -- arithmetic ----------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, factor: float) -> "Interval":
        points = [factor * self.lo, factor * self.hi]
        points = [0.0 if math.isnan(p) else p for p in points]
        return Interval(min(points), max(points))

    def mul(self, other: "Interval") -> "Interval":
        products = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                p = a * b
                products.append(0.0 if math.isnan(p) else p)
        return Interval(min(products), max(products))

    def power(self, k: int) -> "Interval":
        result = Interval.point(1.0)
        for _ in range(k):
            result = result.mul(self)
        return result

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


State = Dict[str, Interval]


def _eval_poly(poly: Polynomial, state: State, rvar_bounds: Mapping[str, Tuple[float, float]]) -> Interval:
    """Interval evaluation of a (numeric) polynomial."""
    total = Interval.point(0.0)
    for mono, coeff in poly.terms():
        term = Interval.point(1.0)
        for var, exp in mono:
            if var in rvar_bounds:
                lo, hi = rvar_bounds[var]
                base = Interval(lo, hi)
            else:
                base = state.get(var, Interval.top())
            term = term.mul(base.power(exp))
        total = total.add(term.scale(float(coeff)))
    return total


def _linear_bound(atom: Atom) -> Optional[Tuple[str, float, float]]:
    """Decompose ``a*x + b >= 0`` into ``(x, a, b)`` if single-variable linear."""
    poly = atom.relaxed().poly
    if not poly.is_linear():
        return None
    variables = poly.variables()
    if len(variables) != 1:
        return None
    (var,) = variables
    a = float(poly.coeff(Monomial.variable(var)))
    b = float(poly.constant_term())
    if a == 0.0:
        return None
    return var, a, b


def _refine(state: State, cond: BoolExpr, assume_true: bool) -> Optional[State]:
    """Refine intervals assuming ``cond`` is true (or false).

    Only single-variable linear atoms refine; anything else is ignored
    (a sound over-approximation).  Returns ``None`` when the branch is
    provably unreachable.
    """
    disjuncts = cond.to_dnf() if assume_true else cond.negate().to_dnf()
    if not disjuncts:
        return None  # condition is constant-false: branch unreachable
    refined_states: List[State] = []
    for conj in disjuncts:
        current: Optional[State] = dict(state)
        for atom in conj:
            decomp = _linear_bound(atom)
            if decomp is None or current is None:
                continue
            var, a, b = decomp
            bound = -b / a
            limit = Interval(bound, _INF) if a > 0 else Interval(-_INF, bound)
            met = current.get(var, Interval.top()).meet(limit)
            if met is None:
                current = None
                break
            current[var] = met
        if current is not None:
            refined_states.append(current)
    if not refined_states:
        return None
    out = refined_states[0]
    for other in refined_states[1:]:
        out = _join_states(out, other)
    return out


def _join_states(a: State, b: State) -> State:
    keys = set(a) | set(b)
    return {k: a.get(k, Interval.top()).join(b.get(k, Interval.top())) for k in keys}


def _states_equal(a: Optional[State], b: Optional[State]) -> bool:
    if a is None or b is None:
        return a is b
    keys = set(a) | set(b)
    return all(a.get(k, Interval.top()) == b.get(k, Interval.top()) for k in keys)


def _edge_states(
    label, state: State, rvar_bounds: Mapping[str, Tuple[float, float]]
) -> List[Tuple[int, Optional[State]]]:
    """The abstract states flowing out of ``label`` along each edge."""
    if isinstance(label, AssignLabel):
        new_state = dict(state)
        new_state[label.var] = _eval_poly(label.expr, state, rvar_bounds)
        return [(label.succ, new_state)]
    if isinstance(label, BranchLabel):
        return [
            (label.succ_true, _refine(state, label.cond, assume_true=True)),
            (label.succ_false, _refine(state, label.cond, assume_true=False)),
        ]
    if isinstance(label, (ProbLabel, NondetLabel)):
        return [(label.succ_then, dict(state)), (label.succ_else, dict(state))]
    if isinstance(label, TickLabel):
        return [(label.succ, dict(state))]
    return []  # terminal


def generate_interval_invariants(
    cfg: CFG,
    init: Mapping[str, float],
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> InvariantMap:
    """Run the interval analysis from the initial valuation ``init``.

    Variables not mentioned by ``init`` start at 0 (matching the
    interpreter).  The ascending phase uses widening for termination; a
    few descending (narrowing) passes then recover the guard-derived
    bounds that widening destroyed.  Returns interval constraints at
    every reachable label; unreachable labels get the (vacuous) trivial
    invariant.
    """
    rvar_bounds = {name: dist.support_bounds() for name, dist in cfg.rvars.items()}
    entry_state: State = {var: Interval.point(float(init.get(var, 0.0))) for var in cfg.pvars}

    states: Dict[int, Optional[State]] = {label.id: None for label in cfg}
    visit_counts: Dict[int, int] = {label.id: 0 for label in cfg}
    states[cfg.entry] = entry_state

    worklist: List[int] = [cfg.entry]
    iterations = 0
    while worklist and iterations < max_iterations:
        iterations += 1
        label_id = worklist.pop(0)
        state = states[label_id]
        if state is None:
            continue
        label = cfg.labels[label_id]

        for succ, new_state in _edge_states(label, state, rvar_bounds):
            if new_state is None:
                continue
            old = states[succ]
            merged = new_state if old is None else _join_states(old, new_state)
            if old is not None and visit_counts[succ] >= widen_after:
                merged = {k: old.get(k, Interval.top()).widen(merged.get(k, Interval.top())) for k in merged}
            if not _states_equal(old, merged):
                states[succ] = merged
                visit_counts[succ] += 1
                if succ not in worklist:
                    worklist.append(succ)

    # Descending (narrowing) passes: recompute every label's state from
    # its predecessors' stable states.  Starting from a sound
    # post-fixpoint, each pass stays sound and recovers guard bounds.
    for _ in range(narrow_passes):
        inflow: Dict[int, Optional[State]] = {label.id: None for label in cfg}
        inflow[cfg.entry] = dict(entry_state)
        for label_id, state in states.items():
            if state is None:
                continue
            for succ, new_state in _edge_states(cfg.labels[label_id], state, rvar_bounds):
                if new_state is None:
                    continue
                old = inflow[succ]
                inflow[succ] = new_state if old is None else _join_states(old, new_state)
        states = inflow

    entries: Dict[int, Region] = {}
    for label_id, state in states.items():
        if state is None:
            continue
        constraints: List[Polynomial] = []
        for var, interval in sorted(state.items()):
            if math.isfinite(interval.lo):
                constraints.append(Polynomial.variable(var) - interval.lo)
            if math.isfinite(interval.hi):
                constraints.append(Polynomial.constant(interval.hi) - Polynomial.variable(var))
        entries[label_id] = Region.of(Polyhedron(constraints))
    return InvariantMap(entries)
