"""Automatic linear invariant generation via abstract interpretation.

The paper uses the Stanford Invariant Generator [82] to obtain linear
invariants; any sound generator can be substituted because invariants
are an *input* to the method.  Two generators are provided, selected by
the ``invariant_domain`` option everywhere the pipeline surfaces it:

* ``"interval"`` — per-variable boxes from :mod:`repro.check.interp`
  (``x - lo >= 0`` and ``hi - x >= 0`` rows);
* ``"octagon"`` — relational constraints ``+-x +-y <= c`` from
  :mod:`repro.check.octagon`, which recover facts like ``n - x >= 0``
  that previously had to be hand-annotated.

Both emit *canonical* constraint rows: deduplicated, ordered by
variable name (then constraint kind), independent of dict-iteration
order — so the Gamma rows fed to the Handelman products and the
request fingerprints derived from them are stable and minimal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from ..check.interp import Interval, analyze_cfg
from ..check.octagon import analyze_cfg_octagon
from ..polynomials import Polynomial
from ..semantics.cfg import CFG
from .annotations import InvariantMap
from .polyhedron import Polyhedron, Region

__all__ = [
    "INVARIANT_DOMAINS",
    "Interval",
    "generate_interval_invariants",
    "generate_invariants",
    "generate_octagon_invariants",
]

#: The recognised values of the ``invariant_domain`` option.
INVARIANT_DOMAINS = ("interval", "octagon")


def _canonical_rows(rows: List[Polynomial]) -> List[Polynomial]:
    """Deduplicate constraint rows, preserving their canonical order.

    Emission sites order rows by variable name (then bound kind), so
    first-seen order *is* the canonical order; this pass only drops
    exact repeats (e.g. the same bound reached through two variables'
    emission passes), keeping Gamma minimal and fingerprints stable.
    """
    seen = set()
    out: List[Polynomial] = []
    for row in rows:
        key = tuple(sorted((mono, float(coeff)) for mono, coeff in row.terms()))
        if key in seen:
            continue
        seen.add(key)
        out.append(row)
    return out


def _box_rows(state: Mapping[str, Interval]) -> List[Polynomial]:
    """Canonical interval rows for one abstract box: per variable in
    name order, the finite lower bound then the finite upper bound."""
    rows: List[Polynomial] = []
    for var, interval in sorted(state.items()):
        if math.isfinite(interval.lo):
            rows.append(Polynomial.variable(var) - interval.lo)
        if math.isfinite(interval.hi):
            rows.append(Polynomial.constant(interval.hi) - Polynomial.variable(var))
    return rows


def generate_interval_invariants(
    cfg: CFG,
    init: Mapping[str, float],
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> InvariantMap:
    """Run the interval analysis from the initial valuation ``init``.

    Variables not mentioned by ``init`` start at 0 (matching the
    interpreter).  Returns interval constraints at every reachable
    label; unreachable labels get the (vacuous) trivial invariant.
    """
    analysis = analyze_cfg(
        cfg,
        init,
        widen_after=widen_after,
        narrow_passes=narrow_passes,
        max_iterations=max_iterations,
    )
    entries: Dict[int, Region] = {}
    for label_id, state in analysis.states.items():
        if state is None:
            continue
        constraints = _canonical_rows(_box_rows(state))
        entries[label_id] = Region.of(Polyhedron(constraints))
    return InvariantMap(entries)


def generate_octagon_invariants(
    cfg: CFG,
    init: Mapping[str, float],
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> InvariantMap:
    """Run the octagon analysis from the initial valuation ``init``.

    Returns, at every reachable label, the unary bounds plus every
    relational constraint ``+-x +-y <= c`` that is strictly stronger
    than what the unary bounds already imply (the entailed ones would
    only bloat the Handelman products).
    """
    analysis = analyze_cfg_octagon(
        cfg,
        init,
        widen_after=widen_after,
        narrow_passes=narrow_passes,
        max_iterations=max_iterations,
    )
    entries: Dict[int, Region] = {}
    for label_id in analysis.states:
        rows = analysis.constraints_at(label_id)
        if rows is None:
            continue
        entries[label_id] = Region.of(Polyhedron(_canonical_rows(rows)))
    return InvariantMap(entries)


def generate_invariants(
    cfg: CFG,
    init: Mapping[str, float],
    domain: str = "interval",
    widen_after: int = 3,
    narrow_passes: int = 3,
    max_iterations: int = 10_000,
) -> InvariantMap:
    """Generate invariants in the requested abstract ``domain``."""
    if domain not in INVARIANT_DOMAINS:
        raise ValueError(
            f"invariant_domain must be one of {INVARIANT_DOMAINS}, got {domain!r}"
        )
    generate = (
        generate_octagon_invariants if domain == "octagon" else generate_interval_invariants
    )
    return generate(
        cfg,
        init,
        widen_after=widen_after,
        narrow_passes=narrow_passes,
        max_iterations=max_iterations,
    )
