"""Per-label invariant annotations.

The paper assumes linear invariants are given as part of the input
(Section 4.5, limitation 4) — e.g. the bracketed annotations of
Figure 9.  :class:`InvariantMap` is that input: a mapping from label
numbers to :class:`Region` (a finite union of polyhedra, as in
Definition 6.1).  Annotations may be written as strings in the surface
condition syntax, including disjunctions::

    inv = InvariantMap.from_strings(cfg, {
        1: "x >= 0",
        4: "x >= 0 and y + 1 >= 0 and 1 - y >= 0",
        6: "(d >= 30 and n >= 0) or (n <= 1 and n >= 0)",
    })

Labels without an annotation default to the trivial invariant ``true``
(sound but weak; Handelman certificates then have little to work with).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional, Union

from ..errors import InvariantError
from ..polynomials import Polynomial
from ..syntax.ast import BoolExpr
from ..syntax.parser import parse_condition
from .polyhedron import Polyhedron, Region

__all__ = ["InvariantMap"]

AnnotationValue = Union[str, BoolExpr, Region, Polyhedron, Iterable[Polynomial]]


class InvariantMap:
    """A linear invariant: one region (union of polyhedra) per CFG label."""

    def __init__(self, entries: Optional[Mapping[int, Region]] = None):
        self._entries: Dict[int, Region] = dict(entries or {})

    # -- constructors ---------------------------------------------------

    @classmethod
    def trivial(cls) -> "InvariantMap":
        """The invariant assigning ``true`` everywhere."""
        return cls()

    @classmethod
    def from_strings(cls, cfg, annotations: Mapping[int, AnnotationValue]) -> "InvariantMap":
        """Parse string/expression annotations keyed by label number."""
        entries: Dict[int, Region] = {}
        for label_id, value in annotations.items():
            if label_id not in cfg.labels:
                raise InvariantError(f"annotation references unknown label {label_id}")
            entries[label_id] = _coerce(value)
        return cls(entries)

    @classmethod
    def uniform(cls, cfg, value: AnnotationValue) -> "InvariantMap":
        """The same region at every non-terminal label (a *global*
        invariant, convenient for simple one-loop programs)."""
        region = _coerce(value)
        entries = {label.id: region for label in cfg.nonterminal_labels()}
        return cls(entries)

    # -- access -----------------------------------------------------------

    def get(self, label_id: int) -> Region:
        return self._entries.get(label_id, Region.whole_space())

    def set(self, label_id: int, value: AnnotationValue) -> None:
        self._entries[label_id] = _coerce(value)

    def conjoin(self, label_id: int, value: AnnotationValue) -> None:
        """Strengthen the invariant at one label."""
        self._entries[label_id] = self.get(label_id).conjoin(_coerce(value))

    def copy(self) -> "InvariantMap":
        """Shallow copy: independent entry table, shared (immutable)
        regions.  Lets callers strengthen a cached map without aliasing."""
        return InvariantMap(dict(self._entries))

    def merge(self, other: "InvariantMap") -> "InvariantMap":
        """Pointwise conjunction of two invariant maps."""
        out = InvariantMap(dict(self._entries))
        for label_id, region in other._entries.items():
            out._entries[label_id] = out.get(label_id).conjoin(region)
        return out

    def items(self):
        return self._entries.items()

    def __contains__(self, label_id: int) -> bool:
        return label_id in self._entries

    # -- validation ---------------------------------------------------------

    def validate_by_simulation(
        self,
        cfg,
        init: Mapping[str, float],
        runs: int = 50,
        seed: Optional[int] = 0,
        max_steps: int = 100_000,
        scheduler=None,
        tol: float = 1e-6,
    ) -> None:
        """Empirically check the invariant along simulated runs.

        Raises :class:`InvariantError` naming the first violated label.
        This cannot *prove* an invariant, but it catches wrong
        annotations quickly and is used throughout the test suite.
        """
        from ..semantics.interpreter import run as run_one
        from ..semantics.schedulers import RandomScheduler

        rng = random.Random(seed)
        scheduler = scheduler or RandomScheduler(seed=seed)
        for _ in range(runs):
            result = run_one(
                cfg, init, scheduler=scheduler, rng=rng, max_steps=max_steps, record_trajectory=True
            )
            for label_id, valuation, _cost in result.trajectory or ():
                region = self._entries.get(label_id)
                if region is None:
                    continue
                if not region.contains(valuation, tol):
                    raise InvariantError(
                        f"invariant violated at label {label_id}: "
                        f"{region!r} fails under {valuation}"
                    )

    def __repr__(self) -> str:
        lines = [f"  {label_id}: {region!r}" for label_id, region in sorted(self._entries.items())]
        return "InvariantMap(\n" + "\n".join(lines) + "\n)"


def _coerce(value: AnnotationValue) -> Region:
    if isinstance(value, Region):
        return value
    if isinstance(value, Polyhedron):
        return Region.of(value)
    if isinstance(value, str):
        return Region.from_condition(parse_condition(value))
    if isinstance(value, BoolExpr):
        return Region.from_condition(value)
    return Region.of(Polyhedron(value))
