"""Linear invariants: polyhedra, annotations, automatic generation."""

from .annotations import InvariantMap
from .generator import (
    INVARIANT_DOMAINS,
    Interval,
    generate_interval_invariants,
    generate_invariants,
    generate_octagon_invariants,
)
from .polyhedron import Polyhedron, Region

__all__ = [
    "INVARIANT_DOMAINS",
    "Interval",
    "InvariantMap",
    "Polyhedron",
    "Region",
    "generate_interval_invariants",
    "generate_invariants",
    "generate_octagon_invariants",
]
