"""Linear invariants: polyhedra, annotations, automatic generation."""

from .annotations import InvariantMap
from .generator import Interval, generate_interval_invariants
from .polyhedron import Polyhedron, Region

__all__ = ["Interval", "InvariantMap", "Polyhedron", "Region", "generate_interval_invariants"]
